package core

import (
	"strings"
	"testing"
)

// feasibilityMap flattens an Outcome's per-candidate verdicts to
// point-key → Feasible for cross-run comparison.
func feasibilityMap(out *Outcome) map[uint32]bool {
	m := map[uint32]bool{}
	for _, it := range out.Iterations {
		for _, c := range it.Candidates {
			m[c.Point.Key()] = c.Feasible
		}
	}
	return m
}

// sameVerdicts fails the test unless both runs visited the same candidates
// and agreed on every feasibility verdict and on the selected optimum.
func sameVerdicts(t *testing.T, base, adaptive *Outcome) {
	t.Helper()
	if base.Status != adaptive.Status {
		t.Fatalf("status diverged: %v vs %v", base.Status, adaptive.Status)
	}
	if (base.Best == nil) != (adaptive.Best == nil) {
		t.Fatalf("optimum existence diverged: %v vs %v", base.Best, adaptive.Best)
	}
	if base.Best != nil && base.Best.Point != adaptive.Best.Point {
		t.Fatalf("optimum moved: %v vs %v", base.Best.Point, adaptive.Best.Point)
	}
	bm, am := feasibilityMap(base), feasibilityMap(adaptive)
	if len(bm) != len(am) {
		t.Fatalf("candidate sets diverged: %d vs %d points", len(bm), len(am))
	}
	for k, f := range bm {
		af, ok := am[k]
		if !ok {
			t.Fatalf("point key %d evaluated only in the baseline run", k)
		}
		if af != f {
			t.Fatalf("feasibility verdict flipped for point key %d: %v vs %v", k, f, af)
		}
	}
}

// TestAdaptiveScreeningSavesWork: with AdaptiveReps on, the two-stage
// screening pass must spend at least 25% fewer simulated seconds (the
// confidence gate cuts clearly-infeasible candidates short) while leaving
// the final optimum and every feasibility verdict unchanged, and the
// avoided work must be surfaced through the saved-replication counters.
// The bound sits far from every candidate's PDR, so the resampled
// block-mean screen statistic cannot flip any verdict.
func TestAdaptiveScreeningSavesWork(t *testing.T) {
	base, err := NewOptimizer(fastProblem(0.6), Options{TwoStage: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewOptimizer(fastProblem(0.6), Options{TwoStage: true, AdaptiveReps: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, base, adaptive)
	if base.RepsSaved != 0 || base.SavedSeconds != 0 {
		t.Fatalf("baseline reported savings without AdaptiveReps: %d reps, %v s",
			base.RepsSaved, base.SavedSeconds)
	}
	if adaptive.RepsSaved <= 0 {
		t.Fatal("adaptive screening saved no replications")
	}
	if adaptive.Engine.ScreenSeconds > 0.75*base.Engine.ScreenSeconds {
		t.Fatalf("screening spent %.6g s adaptively vs %.6g s exhaustively — less than 25%% saved",
			adaptive.Engine.ScreenSeconds, base.Engine.ScreenSeconds)
	}
	// Identical trajectory: spent + saved must reconstruct the baseline's
	// screening budget exactly (the block split is an exact division of
	// the fast problem's Duration).
	if got, want := adaptive.Engine.ScreenSeconds+adaptive.SavedSeconds, base.Engine.ScreenSeconds; got != want {
		t.Fatalf("screen spent+saved = %v s, want the exhaustive budget %v s", got, want)
	}
	if !strings.Contains(adaptive.Engine.String(), "reps saved") {
		t.Fatalf("engine stats line does not surface the savings: %s", adaptive.Engine.String())
	}
}

// TestAdaptiveScreeningKeepsPowerClass: at a bound that cuts through the
// candidate PDR distribution (0.9 leaves some classes within the screen
// band), the adaptive screen's block-mean statistic is a fresh draw of
// the same-noise estimator the exhaustive screen uses, so borderline
// candidates may legitimately land on the other side of the band — but
// the selected power class must not move (the same guarantee the
// two-stage screen itself gives versus the single-stage run).
func TestAdaptiveScreeningKeepsPowerClass(t *testing.T) {
	base, err := NewOptimizer(fastProblem(0.9), Options{TwoStage: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewOptimizer(fastProblem(0.9), Options{TwoStage: true, AdaptiveReps: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != adaptive.Status {
		t.Fatalf("status diverged: %v vs %v", base.Status, adaptive.Status)
	}
	if base.Best == nil || adaptive.Best == nil {
		t.Fatalf("missing optimum: base %v, adaptive %v", base.Best, adaptive.Best)
	}
	if base.Best.AnalyticMW != adaptive.Best.AnalyticMW {
		t.Fatalf("adaptive screening changed the optimum class: %v vs %v mW",
			adaptive.Best.AnalyticMW, base.Best.AnalyticMW)
	}
	if adaptive.RepsSaved <= 0 {
		t.Fatal("adaptive screening saved no replications")
	}
}

// TestAdaptiveRobustSavesWork: with AdaptiveReps on, the robust stage's
// family short-circuit must skip scenario evaluations on families already
// pinned infeasible, with the skipped work credited at full budget so
// spent + saved reconstructs the exhaustive cost exactly — and at
// Runs = 1 the surviving families' results are bit-identical, so every
// verdict and the optimum must match the exhaustive run.
func TestAdaptiveRobustSavesWork(t *testing.T) {
	// A bound low enough that nominally feasible candidates exist (so the
	// robust stage runs) yet tight enough that single-node failures breach
	// it and trip the short-circuit.
	opts := func(adaptive bool) Options {
		return Options{
			Robust:       RobustOptions{Enabled: true, KFailures: 1},
			AdaptiveReps: adaptive,
		}
	}
	base, err := NewOptimizer(fastProblem(0.6), opts(false)).Run()
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewOptimizer(fastProblem(0.6), opts(true)).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, base, adaptive)
	if adaptive.RepsSaved <= 0 {
		t.Fatal("adaptive robust stage saved no scenario evaluations")
	}
	// With identical verdicts both runs submit the same work, so the
	// adaptive run's fresh simulated seconds plus its credited savings
	// must equal the exhaustive run's fresh simulated seconds.
	if got, want := adaptive.SimulatedSeconds+adaptive.SavedSeconds, base.SimulatedSeconds; got != want {
		t.Fatalf("spent+saved = %v s, want the exhaustive total %v s", got, want)
	}
	if best := adaptive.Best; best != nil && best.WorstPDR != base.Best.WorstPDR {
		t.Fatalf("optimum's worst-case PDR diverged: %v vs %v", best.WorstPDR, base.Best.WorstPDR)
	}
	t.Logf("robust chain: %d reps saved, %.4g of %.4g simulated seconds avoided (%.1f%%)",
		adaptive.RepsSaved, adaptive.SavedSeconds, base.SimulatedSeconds,
		100*adaptive.SavedSeconds/base.SimulatedSeconds)
}

// TestAdaptiveChainSavesWork runs the full quick chain — two-stage
// screening plus robust screening, both gated — and checks the combined
// savings while the optimum and verdicts match the exhaustive chain.
func TestAdaptiveChainSavesWork(t *testing.T) {
	opts := func(adaptive bool) Options {
		return Options{
			TwoStage:     true,
			Robust:       RobustOptions{Enabled: true, KFailures: 1},
			AdaptiveReps: adaptive,
		}
	}
	base, err := NewOptimizer(fastProblem(0.6), opts(false)).Run()
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewOptimizer(fastProblem(0.6), opts(true)).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, base, adaptive)
	if adaptive.RepsSaved <= 0 {
		t.Fatal("adaptive chain saved no replications")
	}
	if adaptive.Engine.ScreenSeconds >= base.Engine.ScreenSeconds {
		t.Fatalf("screening stage saved nothing: %v vs %v seconds",
			adaptive.Engine.ScreenSeconds, base.Engine.ScreenSeconds)
	}
	if got, want := adaptive.SimulatedSeconds+adaptive.SavedSeconds, base.SimulatedSeconds; got != want {
		t.Fatalf("spent+saved = %v s, want the exhaustive total %v s", got, want)
	}
	t.Logf("chain: %d reps saved, %.4g of %.4g simulated seconds avoided (%.1f%%)",
		adaptive.RepsSaved, adaptive.SavedSeconds, base.SimulatedSeconds,
		100*adaptive.SavedSeconds/base.SimulatedSeconds)
}
