package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
)

// intKey fingerprints a pool member by its integer-variable assignment
// (no-good enumeration distinguishes members exactly by these bits).
func intKey(p *linexpr.Compiled, x []float64) string {
	b := make([]byte, 0, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		if !p.Integer[j] {
			continue
		}
		if x[j] > 0.5 {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	return string(b)
}

func sortedKeys(p *linexpr.Compiled, pool []milp.PoolSolution) []string {
	keys := make([]string, len(pool))
	for i, ps := range pool {
		keys[i] = intKey(p, ps.X)
	}
	sort.Strings(keys)
	return keys
}

// TestPaperChainWarmMatchesCold drives the first three Algorithm 1 MILP
// iterations of the paper problem — SolvePool, prune cut, SolvePool — on
// the persistent warm State and on the clone-based cold path. Objectives
// are pinned to the captured baseline, pools must match as sets, and the
// warm path must spend at least 2x fewer simplex pivots (the tentpole
// speedup this PR exists for).
func TestPaperChainWarmMatchesCold(t *testing.T) {
	wantObj := []float64{1.004296875, 1.02, 1.07265625}
	wantPool := []int{16, 16, 16}

	type chain struct {
		obj    []float64
		keys   [][]string
		pivots int
		nodes  int
	}
	runChain := func(warm bool) chain {
		pr := design.PaperProblem(0.9)
		mm, err := buildMILP(pr)
		if err != nil {
			t.Fatal(err)
		}
		work := mm.model.Compile()
		var st *milp.State
		if warm {
			st = milp.NewState(work, milp.Options{})
			if st.Legacy() {
				t.Fatal("paper problem fell back to legacy path")
			}
		}
		var c chain
		for iter := 0; iter < len(wantObj); iter++ {
			var pool []milp.PoolSolution
			var agg *milp.Solution
			var err error
			if warm {
				pool, agg, err = st.SolvePool(0, 1e-6)
			} else {
				pool, agg, err = milp.SolvePool(work, milp.Options{}, 0, 1e-6)
			}
			if err != nil {
				t.Fatal(err)
			}
			if agg.Status != milp.Optimal {
				t.Fatalf("warm=%v iter %d: status %v", warm, iter, agg.Status)
			}
			for i, ps := range pool {
				if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
					t.Fatalf("warm=%v iter %d member %d: %v", warm, iter, i, err)
				}
			}
			c.obj = append(c.obj, agg.Objective)
			c.keys = append(c.keys, sortedKeys(work, pool))
			c.pivots += agg.LPIterations
			c.nodes += agg.Nodes
			work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, agg.Objective+1e-4)
		}
		return c
	}

	cold := runChain(false)
	warm := runChain(true)

	for i := range wantObj {
		if math.Abs(cold.obj[i]-wantObj[i]) > 1e-9 {
			t.Errorf("iter %d: cold obj %.10g, pinned %.10g", i, cold.obj[i], wantObj[i])
		}
		if math.Abs(warm.obj[i]-wantObj[i]) > 1e-9 {
			t.Errorf("iter %d: warm obj %.10g, pinned %.10g", i, warm.obj[i], wantObj[i])
		}
		if len(warm.keys[i]) != wantPool[i] || len(cold.keys[i]) != wantPool[i] {
			t.Fatalf("iter %d: pool sizes warm=%d cold=%d, pinned %d",
				i, len(warm.keys[i]), len(cold.keys[i]), wantPool[i])
		}
		for k := range warm.keys[i] {
			if warm.keys[i][k] != cold.keys[i][k] {
				t.Fatalf("iter %d: pool sets differ at %d: %s vs %s",
					i, k, warm.keys[i][k], cold.keys[i][k])
			}
		}
	}
	if warm.pivots*2 > cold.pivots {
		t.Errorf("warm chain used %d pivots vs cold %d: want >= 2x reduction",
			warm.pivots, cold.pivots)
	}
	t.Logf("pivots: warm=%d cold=%d (%.1fx), nodes: warm=%d cold=%d",
		warm.pivots, cold.pivots, float64(cold.pivots)/float64(warm.pivots),
		warm.nodes, cold.nodes)
}

// TestWarmPoolDeepChainComplete drives the persistent warm state through
// the PDRmin=1.0 prune chain — deep enough that accumulated tableau
// drift once tripped mid-call stale rebuilds — and pins every pool size
// against the clone-based baseline. Before warmPool discarded and redid
// stale-marked calls, the iteration-7 pool silently lost 21 of its 132
// slab members to subtrees a drifted basis falsely closed.
func TestWarmPoolDeepChainComplete(t *testing.T) {
	wantPool := []int{16, 16, 16, 72, 72, 72, 132, 132}
	pr := design.PaperProblem(1.0)
	mm, err := buildMILP(pr)
	if err != nil {
		t.Fatal(err)
	}
	work := mm.model.Compile()
	st := milp.NewState(work, milp.Options{})
	if st.Legacy() {
		t.Fatal("paper problem fell back to legacy path")
	}
	for iter, want := range wantPool {
		pool, agg, err := st.SolvePool(0, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Status != milp.Optimal {
			t.Fatalf("iter %d: status %v", iter, agg.Status)
		}
		if len(pool) != want {
			t.Errorf("iter %d: pool size %d, want %d", iter, len(pool), want)
		}
		for i, ps := range pool {
			if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
				t.Fatalf("iter %d member %d: %v", iter, i, err)
			}
		}
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, agg.Objective+1e-4)
	}
}

// TestRunWarmMatchesColdMILP runs full Algorithm 1 at reduced fidelity
// with the warm persistent MILP state and with ColdMILP, and requires
// bit-identical outcomes: same best point, same power, same iteration
// trace.
func TestRunWarmMatchesColdMILP(t *testing.T) {
	run := func(cold bool) *Outcome {
		out, err := NewOptimizer(fastProblem(0.7), Options{ColdMILP: cold}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	warm, cold := run(false), run(true)
	if warm.Status != cold.Status {
		t.Fatalf("status warm=%v cold=%v", warm.Status, cold.Status)
	}
	if warm.Best == nil || cold.Best == nil {
		t.Fatalf("missing best: warm=%v cold=%v", warm.Best, cold.Best)
	}
	if warm.Best.Point != cold.Best.Point {
		t.Errorf("best point warm=%+v cold=%+v", warm.Best.Point, cold.Best.Point)
	}
	if warm.Best.PowerMW != cold.Best.PowerMW {
		t.Errorf("best power warm=%v cold=%v", warm.Best.PowerMW, cold.Best.PowerMW)
	}
	if warm.Evaluations != cold.Evaluations || len(warm.Iterations) != len(cold.Iterations) {
		t.Errorf("trace differs: evals %d/%d, iters %d/%d",
			warm.Evaluations, cold.Evaluations, len(warm.Iterations), len(cold.Iterations))
	}
	for i := range warm.Iterations {
		// P̄* is a simplex tableau result: the warm pivot sequence rounds
		// the last ~3 bits differently, which %.4f reporting and the
		// 1e-4 mW prune margin both swallow. Everything discrete —
		// pool sizes, feasible counts, chosen points — must match exactly.
		w, c := warm.Iterations[i].PBarStar, cold.Iterations[i].PBarStar
		if math.Abs(w-c) > 1e-9*(1+math.Abs(c)) {
			t.Errorf("iter %d: P̄* warm=%v cold=%v", i, w, c)
		}
		if len(warm.Iterations[i].Candidates) != len(cold.Iterations[i].Candidates) ||
			warm.Iterations[i].FeasibleCount != cold.Iterations[i].FeasibleCount {
			t.Errorf("iter %d: candidates %d/%d feasible %d/%d",
				i, len(warm.Iterations[i].Candidates), len(cold.Iterations[i].Candidates),
				warm.Iterations[i].FeasibleCount, cold.Iterations[i].FeasibleCount)
		}
	}
	if warm.MILPWarmSolves == 0 {
		t.Error("warm run recorded no warm solves")
	}
	if cold.MILPWarmSolves != 0 || cold.MILPColdSolves != 0 {
		t.Errorf("cold run recorded warm-state stats: %d/%d",
			cold.MILPWarmSolves, cold.MILPColdSolves)
	}
}

// TestPaperChainKernelModes re-runs the pinned three-iteration paper
// chain under every kernel and worker mode the warm state supports —
// sparse revised simplex, dense tableau, and parallel subtree dives —
// and requires the exact pinned objectives and identical pool sets
// from all of them. This is the cross-kernel acceptance gate: neither
// the sparse kernel, presolve, nor the parallel enumeration may move a
// single pool member on the paper problem.
func TestPaperChainKernelModes(t *testing.T) {
	wantObj := []float64{1.004296875, 1.02, 1.07265625}
	wantPool := []int{16, 16, 16}

	modes := []struct {
		name string
		opt  milp.Options
	}{
		{"auto", milp.Options{}},
		{"sparse", milp.Options{SparseLP: true}},
		{"dense", milp.Options{DenseLP: true}},
		{"sparse_w1", milp.Options{SparseLP: true, Workers: 1}},
		{"sparse_w4", milp.Options{SparseLP: true, Workers: 4}},
		{"dense_w4", milp.Options{DenseLP: true, Workers: 4}},
	}
	var ref [][]string
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			pr := design.PaperProblem(0.9)
			mm, err := buildMILP(pr)
			if err != nil {
				t.Fatal(err)
			}
			work := mm.model.Compile()
			st := milp.NewState(work, mode.opt)
			var keys [][]string
			for iter := 0; iter < len(wantObj); iter++ {
				pool, agg, err := st.SolvePool(0, 1e-6)
				if err != nil {
					t.Fatal(err)
				}
				if agg.Status != milp.Optimal {
					t.Fatalf("iter %d: status %v", iter, agg.Status)
				}
				if math.Abs(agg.Objective-wantObj[iter]) > 1e-9 {
					t.Fatalf("iter %d: obj %.10g, pinned %.10g", iter, agg.Objective, wantObj[iter])
				}
				if len(pool) != wantPool[iter] {
					t.Fatalf("iter %d: %d pool members, pinned %d", iter, len(pool), wantPool[iter])
				}
				for i, ps := range pool {
					if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
						t.Fatalf("iter %d member %d: %v", iter, i, err)
					}
				}
				keys = append(keys, sortedKeys(work, pool))
				work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, agg.Objective+1e-4)
			}
			if ref == nil {
				ref = keys
				return
			}
			for i := range keys {
				for k := range keys[i] {
					if keys[i][k] != ref[i][k] {
						t.Fatalf("iter %d: pool member %d differs from reference mode: %s vs %s",
							i, k, keys[i][k], ref[i][k])
					}
				}
			}
		})
	}
}
