package core

import (
	"fmt"
	"math"

	"hiopt/internal/body"
	"hiopt/internal/design"
	"hiopt/internal/fault"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
)

// RobustCompile configures the Γ-robust compilation mode of the MILP
// relaxation P̃: cardinality-constrained (Bertsimas–Sim) protection terms
// on the link-budget and node-availability constraint families, lowered
// through LP duality in internal/linexpr so the output stays a plain
// MILP for the existing kernels. With Gamma == 0 the compilation is
// bit-identical to the nominal P̃.
type RobustCompile struct {
	// Gamma is the protection budget: the number of uncertain
	// coefficients the adversary may deviate at once. It scales the
	// availability family (how many nodes fail simultaneously) and, in
	// the saturated min(Γ,1) form, the per-link and power deviations
	// (each link-budget row has a single uncertain path loss; the power
	// row's deviations attach to one-hot selector products — the
	// adversary gains nothing past the first deviation in either, so the
	// compiled matrix is identical for every Γ >= 1 and a Γ sweep is
	// pure right-hand-side retargeting; see RobustHandle).
	Gamma float64
	// LinkDeviationDB is the worst-case upward path-loss deviation
	// protected against on every link-budget row, in dB. 0 derives it
	// from the channel model's shadowing statistics as Sigma/2 — the
	// Gauss–Markov temporal variation spends most of its time within
	// half a standard deviation, and a full-σ margin would exceed the
	// strongest Tx mode's headroom on the mandatory ankle link, making
	// every protected problem vacuously infeasible.
	LinkDeviationDB float64
	// PowerDeviationFrac is the fractional upward deviation of each
	// Eq. (9) power coefficient (fault-induced retransmissions and
	// recovery traffic), protected on the power-budget row. 0 derives
	// the default 0.15. The power family only exists when PowerBudgetMW
	// is set — the nominal model has no power constraint, only the
	// objective.
	PowerDeviationFrac float64
	// PowerBudgetMW, when positive, adds a protected power-budget row
	// P̄(x) + protection <= PowerBudgetMW.
	PowerBudgetMW float64
	// PDRFloor is the robust reliability floor of the availability
	// family: the network PDR proxy must clear it with Γ nodes failed.
	// 0 derives Problem.PDRMin. Note the hard ceiling: with N nodes and
	// Γ failures the proxy cannot exceed (N − Γ(1−FailFrac))/N, so a
	// floor of Problem.PDRMin = 0.9 is unattainable within the paper's
	// MaxNodes = 6 at Γ >= 1 and the compiled problem is (correctly)
	// infeasible; robust studies set an attainable floor explicitly.
	PDRFloor float64
	// FailFrac is the delivered-traffic fraction of an adversarially
	// failed node (it dies at FailFrac × horizon). 0 derives
	// fault.DefaultFailFrac, keeping the proposer and the simulation
	// verifier on the same fault model.
	FailFrac float64
}

func (rc RobustCompile) withDefaults(pr *design.Problem) RobustCompile {
	if rc.LinkDeviationDB <= 0 {
		rc.LinkDeviationDB = float64(pr.Channel.Sigma) / 2
	}
	if rc.PowerDeviationFrac <= 0 {
		rc.PowerDeviationFrac = 0.15
	}
	if rc.PDRFloor <= 0 {
		rc.PDRFloor = pr.PDRMin
	}
	if rc.FailFrac <= 0 {
		rc.FailFrac = fault.DefaultFailFrac
	}
	return rc
}

// RobustHandle locates the Γ-dependent artifacts of a robust
// compilation inside the compiled arena, so callers can retarget Γ on a
// live warm-started milp.State instead of recompiling. The entire
// Γ-dependence of the compiled matrix for Γ >= 1 sits in one number:
// the availability row's right-hand side −(1−FailFrac)·Γ (the link and
// power families are compiled in their saturated min(Γ,1) form, exact
// for their single-deviation structure). A Γ move is therefore one
// SetRowRHS call — the warm kernel re-solves from its current basis by
// dual simplex, which is the performance-critical property the
// milp_gamma_warm benchmark pins.
type RobustHandle struct {
	// Gamma is the currently targeted protection budget.
	Gamma float64
	// FailFrac and PDRFloor echo the compilation parameters.
	FailFrac float64
	PDRFloor float64
	// AvailRow is the arena row index of the availability floor row
	// (the analytically eliminated dual: each failed node costs exactly
	// (1−FailFrac) of the PDR-proxy mass, so the inner maximum is
	// Γ·(1−FailFrac) independent of which nodes are chosen, and the
	// whole protection folds into the right-hand side).
	AvailRow int
	// LinkRows are the protected link-budget rows (identical for every
	// Γ >= 1); PowerRow is the protected power-budget row or -1.
	LinkRows []int
	PowerRow int
	// AuxVars counts the z/p dual auxiliaries the lowering added.
	AuxVars int
}

// AvailRHS is the availability row's right-hand side at budget gamma.
func (h *RobustHandle) AvailRHS(gamma float64) float64 {
	return -(1 - h.FailFrac) * gamma
}

// retargetable validates a Γ move without a rebuild: both endpoints
// must sit in the saturated regime (Γ >= 1), where the link and power
// rows are Γ-invariant and only the availability RHS encodes Γ.
func (h *RobustHandle) retargetable(gamma float64) error {
	if gamma <= 0 {
		return fmt.Errorf("core: cannot retarget to Γ=%g: a Γ=0 relaxation is structurally nominal (no protection rows); recompile instead", gamma)
	}
	if math.Min(gamma, 1) != math.Min(h.Gamma, 1) {
		return fmt.Errorf("core: cannot retarget Γ %g -> %g across the saturation boundary: the link/power deviation scale min(Γ,1) changes; recompile instead", h.Gamma, gamma)
	}
	return nil
}

// RetargetGamma moves a live warm MILP state (built over this handle's
// compiled arena) to a new protection budget via a single right-hand
// side mutation — no recompilation, no cold rebuild.
func (h *RobustHandle) RetargetGamma(st *milp.State, gamma float64) error {
	if err := h.retargetable(gamma); err != nil {
		return err
	}
	st.SetRowRHS(h.AvailRow, h.AvailRHS(gamma))
	h.Gamma = gamma
	return nil
}

// RetargetArena retargets the compiled arena directly (the cold-path
// equivalent of RetargetGamma, for callers without a warm state).
func (h *RobustHandle) RetargetArena(work *linexpr.Compiled, gamma float64) error {
	if err := h.retargetable(gamma); err != nil {
		return err
	}
	work.Rows[h.AvailRow].RHS = h.AvailRHS(gamma)
	h.Gamma = gamma
	return nil
}

// buildRobust appends the Γ-protection families to a built nominal
// model. It must run before Compile (row indices are model constraint
// indices, preserved by compilation).
//
// Families:
//
//   - link budget ("robust_link_i", one per non-coordinator location):
//     if n_i is used in a star, some Tx mode must close the uplink to
//     the chest coordinator against the mean path loss plus the
//     protected deviation δ. The row's single uncertain coefficient
//     admits a closed-form inner maximum min(Γ,1)·δ·n_i, so the dual is
//     eliminated analytically and the big-M form reads
//
//     (PL̄_i + min(Γ,1)·δ + B_i)·n_i − Σ_k Tx_k·p_k − B_i·rt <= B_i − Sens.
//
//     Mesh designs escape via the rt term: multi-hop relaying makes the
//     single-uplink budget the wrong model there (and mesh's NreTx
//     power cost already dominates the pool ordering).
//
//   - availability ("robust_avail", one row): the network-PDR proxy —
//     the mean of per-node delivery, a failed node contributing
//     FailFrac — must clear PDRFloor with Γ nodes failed:
//     N − Γ(1−FailFrac) >= PDRFloor·N. Every used node deviates by the
//     same (1−FailFrac), so the inner adversarial maximum is the
//     constant Γ(1−FailFrac) whenever N >= Γ and the dual solves in
//     closed form (z* = 1−FailFrac, p* = 0): the protection folds into
//     the right-hand side, which is what makes a warm Γ sweep pure
//     SetRowRHS. The row is Protect-tagged so presolve derives nothing
//     from a right-hand side that is about to move.
//
//   - power budget ("robust_power", only with PowerBudgetMW > 0): the
//     Eq. (9) objective expression bounded by the budget, every w/u
//     product coefficient deviating by PowerDeviationFrac of itself,
//     lowered with the full multi-term z/p dual.
func buildRobust(mm *milpModel, pr *design.Problem, rc RobustCompile) (*RobustHandle, error) {
	rc = rc.withDefaults(pr)
	if rc.Gamma <= 0 {
		return nil, nil
	}
	locs := body.Default()
	if pr.Constraints.M > len(locs) {
		return nil, fmt.Errorf("core: robust compilation needs body geometry for all %d locations, have %d", pr.Constraints.M, len(locs))
	}
	m := mm.model
	h := &RobustHandle{Gamma: rc.Gamma, FailFrac: rc.FailFrac, PDRFloor: rc.PDRFloor, PowerRow: -1}
	vars0 := m.NumVars()
	gammaSat := math.Min(rc.Gamma, 1)
	sens := float64(pr.Radio.SensitivityDBm)
	delta := rc.LinkDeviationDB

	// Link-budget family. Each row has exactly one uncertain coefficient
	// (the path loss on n_i), so the Bertsimas–Sim inner maximum is the
	// closed form min(Γ,1)·δ·n_i and the z/p dual pair AddRobust would
	// introduce is eliminated analytically — the protection folds into
	// the n_i coefficient. The general duality lowering is reserved for
	// the multi-term power family below; carrying its tied z/p
	// auxiliaries on seven single-term rows makes the pool enumeration's
	// LP relaxations pathologically degenerate (~40× more branch nodes
	// under prune cuts for identical integer pools).
	for i := 0; i < pr.Constraints.M; i++ {
		if i == body.Chest {
			continue
		}
		pl := float64(pr.Channel.MeanPL(locs[body.Chest], locs[i]))
		bigM := pl + gammaSat*delta + 40
		e := linexpr.TermOf(mm.nVars[i], pl+gammaSat*delta+bigM)
		for k := range pr.Radio.TxModes {
			e = e.PlusTerm(mm.pVars[k], -float64(pr.Radio.TxModes[k].OutputDBm))
		}
		e = e.PlusTerm(mm.rtVar, -bigM)
		m.Add(fmt.Sprintf("robust_link_%d", i), e, linexpr.LE, bigM-sens)
		row := m.NumConstraints() - 1
		m.Protect(row)
		h.LinkRows = append(h.LinkRows, row)
	}

	// Availability family (closed-form dual, RHS-encoded Γ).
	var proxy linexpr.Expr
	for mi, n := range mm.nodeCounts {
		proxy = proxy.PlusTerm(mm.yVars[mi], (rc.PDRFloor-1)*float64(n))
	}
	m.Add("robust_avail", proxy, linexpr.LE, h.AvailRHS(rc.Gamma))
	h.AvailRow = m.NumConstraints() - 1
	m.Protect(h.AvailRow)

	// Power-budget family.
	if rc.PowerBudgetMW > 0 {
		var devs []linexpr.RobustTerm
		for _, t := range mm.objective.Terms {
			if d := rc.PowerDeviationFrac * t.Coef; d > 0 {
				devs = append(devs, linexpr.RobustTerm{Var: t.Var, Dev: d})
			}
		}
		aux := m.AddRobust("robust_power", mm.objective, rc.PowerBudgetMW, gammaSat, devs)
		h.PowerRow = aux.Row
	}
	h.AuxVars = m.NumVars() - vars0
	return h, nil
}

// buildRobustMILP lowers the problem plus the Γ-protection families.
// With rc.Gamma == 0 it is exactly buildMILP (nil handle).
func buildRobustMILP(pr *design.Problem, rc RobustCompile) (*milpModel, *RobustHandle, error) {
	mm, err := buildMILP(pr)
	if err != nil {
		return nil, nil, err
	}
	h, err := buildRobust(mm, pr, rc)
	if err != nil {
		return nil, nil, err
	}
	return mm, h, nil
}

// CompileMILPRobust lowers a problem to its Γ-protected compiled
// relaxation and returns it with the objective expression and the
// retarget handle (nil when rc.Gamma == 0 — the compilation is then
// bit-identical to CompileMILP's).
func CompileMILPRobust(pr *design.Problem, rc RobustCompile) (*linexpr.Compiled, linexpr.Expr, *RobustHandle, error) {
	mm, h, err := buildRobustMILP(pr, rc)
	if err != nil {
		return nil, linexpr.Expr{}, nil, err
	}
	return mm.model.Compile(), mm.objective, h, nil
}
