package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"hiopt/internal/design"
	"hiopt/internal/engine"
	"hiopt/internal/fault"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// Status is the outcome class of an optimization run.
type Status int

const (
	// Optimal means a feasible configuration was found and proven
	// minimal-power under the α bound / exhaustion criterion.
	Optimal Status = iota
	// Infeasible means no configuration satisfies the constraints and the
	// reliability bound.
	Infeasible
	// StatusBudgetExceeded means the iteration or wall-clock budget ran
	// out before the search terminated; Best carries the best-so-far
	// incumbent (possibly nil) without an optimality proof.
	StatusBudgetExceeded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case StatusBudgetExceeded:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Candidate is one simulated design point with its measured metrics.
type Candidate struct {
	Point design.Point
	// AnalyticMW is the Eq. (9) estimate P̄ the MILP optimized.
	AnalyticMW float64
	// PDR and PowerMW are the simulated metrics (averaged over runs).
	PDR     float64
	PowerMW float64
	// NLTDays is the simulated network lifetime.
	NLTDays float64
	// Feasible reports PDR >= PDRMin − FeasTol; under robust screening it
	// additionally requires the scenario-family PDR statistic (worst case
	// or configured quantile) to clear the same bound.
	Feasible bool
	// WorstPDR is the lowest PDR across the robust scenario family. It
	// equals PDR when robust screening is off or when the candidate was
	// already nominally infeasible (the family is then not evaluated).
	// WorstScenario labels the minimizing scenario ("" when none).
	WorstPDR      float64
	WorstScenario string
	// MeanLatency and P95Latency summarize the simulated end-to-end
	// delivery delay in seconds (mean across deliveries averaged over
	// runs; p95 is the pessimistic maximum across runs).
	MeanLatency float64
	P95Latency  float64
}

// Iteration records one RunMILP → RunSim round for reporting.
type Iteration struct {
	// PBarStar is the MILP optimum P̄* of the round.
	PBarStar float64
	// Candidates are the pool members with simulation results.
	Candidates []Candidate
	// FeasibleCount is how many met the reliability bound.
	FeasibleCount int
}

// Outcome is the result of an Algorithm 1 run.
type Outcome struct {
	Status Status
	// Best is the selected configuration (nil when infeasible).
	Best *Candidate
	// Iterations traces the search.
	Iterations []Iteration
	// Evaluations counts distinct configurations simulated; Simulations
	// counts individual simulator runs (Evaluations × Runs, minus cache
	// hits).
	Evaluations int
	Simulations int
	// ScreenedOut counts candidates rejected by the two-stage screening
	// pass without a full-fidelity evaluation (0 unless TwoStage).
	ScreenedOut int
	// SimulatedSeconds totals the simulated time across all runs — the
	// fidelity-independent cost metric (a screening run contributes
	// Duration/5, a full evaluation Duration × Runs).
	SimulatedSeconds float64
	// Engine snapshots the evaluation engine's counters over this run:
	// fresh simulations vs cache and dedup hits, and the per-fidelity
	// simulated time. With a shared engine (Options.Engine) it still
	// covers only this run's traffic.
	Engine engine.Stats
	// MILPNodes and LPIterations aggregate solver effort. MILPWarmSolves
	// and MILPColdSolves split the LP solves into warm dual-simplex
	// re-starts vs cold tableau rebuilds (both zero under ColdMILP).
	MILPNodes      int
	LPIterations   int
	MILPWarmSolves int
	MILPColdSolves int
	// MILPRefactorizations counts sparse-basis LU rebuilds inside the
	// warm kernel (0 under ColdMILP or DenseMILP). PresolveFixedVars,
	// PresolveDroppedRows and PresolveTightenedCoefs report the one-time
	// presolve reductions applied when the warm state was built.
	// MILPParallelDives counts the disjoint subtree dives fanned across
	// workers by pool enumeration (0 unless MILPWorkers >= 1).
	MILPRefactorizations   int
	PresolveFixedVars      int
	PresolveDroppedRows    int
	PresolveTightenedCoefs int
	MILPParallelDives      int
	// TerminatedByAlpha reports whether the α bound (line 5 of
	// Algorithm 1) stopped the search before MILP exhaustion.
	TerminatedByAlpha bool
	// RobustRejected counts candidates that cleared the nominal
	// reliability bound but were rejected by the robust scenario screen —
	// the wasted-proposal count that Robust.ProposeGamma exists to drive
	// down (0 with robust screening off).
	RobustRejected int
	// RepsSaved counts the simulator runs AdaptiveReps avoided: gated
	// replications stopped early by the confidence test plus robust
	// scenario evaluations short-circuited at family level (each credited
	// at its full replication budget). SavedSeconds is their
	// simulated-time equivalent. Both are 0 with AdaptiveReps off.
	RepsSaved    int
	SavedSeconds float64
}

// Options tune Algorithm 1.
type Options struct {
	// PoolLimit caps the MILP solution pool per iteration (0 =
	// unlimited, the paper's behaviour).
	PoolLimit int
	// ColdMILP disables the warm-started persistent MILP state and
	// solves every pool from scratch with the clone-based kernel. The
	// result is identical; this exists for A/B benchmarking and as an
	// escape hatch.
	ColdMILP bool
	// DenseMILP forces the dense-tableau LP kernel inside the warm MILP
	// state instead of the size-based automatic choice (dense at the
	// paper's ~100-row scale, sparse revised simplex above ~400
	// rows+vars). The pools are identical; this is the correctness
	// oracle and A/B baseline for the sparse kernel. Ignored under
	// ColdMILP (the clone-based kernel has its own tableau).
	DenseMILP bool
	// MILPWorkers fans branch-and-bound pool enumeration across this many
	// subtree dive workers (0 = sequential single-tree enumeration). The
	// enumerated pool is bit-identical for every value >= 1 and equal as
	// a set to the sequential pool. Ignored under ColdMILP or PoolLimit.
	MILPWorkers int
	// DisableAlphaBound turns off the line-5 early termination (used by
	// the ablation study; the algorithm then runs until MILP exhaustion).
	DisableAlphaBound bool
	// FeasTol relaxes the reliability check to PDR >= PDRMin − FeasTol,
	// reflecting the ±ε estimation error of finite simulations (the
	// paper sizes T_sim to keep the estimate within a tolerance ε of the
	// true probability; the default here is 0.1%, which at the paper's
	// T_sim = 600 s × 3 runs is several standard errors of the PDR
	// estimator).
	FeasTol float64
	// CutEpsilonMW is the strictness margin of the Update step's
	// P̄ > P̄* cut. It must sit well above the MILP integrality
	// tolerance (else near-integral LP points can cheat the cut) and
	// well below the smallest separation between distinct power classes
	// (~15 µW for the CC2650 Tx modes); the default is 0.1 µW.
	CutEpsilonMW float64
	// Workers sizes the evaluation engine's worker pool (0 = GOMAXPROCS;
	// negative values are rejected by Run). Ignored when Engine is set.
	Workers int
	// Engine, when non-nil, is a shared evaluation service to run all
	// simulations on; its unified (point, fidelity, scenario) cache then
	// spans every layer using it — e.g. an exhaustive sweep can warm-fill
	// the optimizer's full-fidelity entries. When nil the optimizer owns
	// a private engine with Workers workers.
	Engine *engine.Engine
	// TwoStage enables a cheap screening pass before the full-fidelity
	// evaluation of each candidate: a single run at Duration/5 first,
	// and only candidates within ScreenMargin of the reliability bound
	// (or above it) receive the full T_sim × Runs treatment. This
	// implements the paper's observation that T_sim only needs to bound
	// the PDR estimation error relative to the decision being made:
	// clearly infeasible candidates don't need tight estimates.
	TwoStage bool
	// ScreenMargin is the rejection band of the screening pass (default
	// 0.05 — roughly 3σ of the short run's PDR estimator).
	ScreenMargin float64
	// AdaptiveReps enables confidence-gated early stopping in the stages
	// whose evaluations only feed a binary decision. The screening pass
	// (requires TwoStage) splits its Duration/5 budget into
	// adaptiveScreenBlocks equal blocks and stops as soon as the
	// block-PDR confidence interval settles against PDRMin ± ScreenMargin;
	// the robust stage (requires Robust.Enabled) gates each scenario's
	// replications against PDRMin ± FeasTol and short-circuits a family
	// once enough scenarios breach the bound to pin its Quantile order
	// statistic below it. Full-fidelity nominal evaluations always keep
	// their whole budget — their metrics are the reported ones — so the
	// final optimum is driven by the same estimates as with the flag off.
	// The avoided work is surfaced in Outcome.RepsSaved/SavedSeconds (and
	// the engine's reps-saved counters). Adaptive screening changes what
	// a Screen-fidelity cache entry holds, so don't share one engine
	// between adaptive and non-adaptive optimizers.
	AdaptiveReps bool
	// MaxIterations caps the RunMILP → RunSim rounds of one Run (0 =
	// unlimited). When the cap is hit the Outcome carries the best-so-far
	// incumbent with StatusBudgetExceeded.
	MaxIterations int
	// MaxWallClock caps the wall-clock duration of one Run (0 =
	// unlimited); checked at iteration granularity, same best-so-far
	// semantics as MaxIterations.
	MaxWallClock time.Duration
	// Robust configures worst-case screening against a fault-scenario
	// family.
	Robust RobustOptions
	// CacheSalt, when nonzero, is folded into the scenario component of
	// every engine cache key this optimizer generates. Two optimizers
	// sharing one engine describe the same simulation by the same key —
	// which becomes a lie in a multi-tenant service where each tenant's
	// problem perturbs parameters the point key does not capture (body
	// scale, channel deviations, battery state, simulation horizon). A
	// per-tenant salt keeps such tenants in disjoint cache namespaces of
	// the shared engine, while identical tenants (same salt) still share
	// warm results. Zero leaves every key unchanged.
	CacheSalt uint64
	// Progress, when non-nil, receives a line per iteration.
	Progress func(format string, args ...interface{})
	// OnIteration, when non-nil, receives a structured event after each
	// completed RunMILP → RunSim round — the streaming-progress hook
	// (internal/serve emits these as NDJSON lines mid-solve). It is called
	// synchronously from the optimization loop: a slow consumer slows the
	// search, so hand off to a channel or buffer if that matters.
	OnIteration func(IterationEvent)
}

// IterationEvent is the structured per-round progress report delivered
// to Options.OnIteration.
type IterationEvent struct {
	// Iter is the 0-based round index.
	Iter int `json:"iter"`
	// PBarStar is the round's MILP optimum P̄* (mW).
	PBarStar float64 `json:"pbar_star_mw"`
	// PoolSize and FeasibleCount describe the round's candidate pool.
	PoolSize      int `json:"pool"`
	FeasibleCount int `json:"feasible"`
	// BestPowerMW is the incumbent's simulated power after the round
	// (0 while no feasible incumbent exists; real powers are positive).
	BestPowerMW float64 `json:"best_mw,omitempty"`
	// BestPoint labels the incumbent configuration ("" when none).
	BestPoint string `json:"best_point,omitempty"`
}

// RobustOptions configure the robust evaluation mode: every nominally
// feasible pool candidate is re-evaluated under a fault-scenario family
// and must also clear the reliability bound on the family's worst case
// (or a configured quantile) to stay feasible — the scenario-based robust
// design of D'Andreagiovanni et al. applied to Algorithm 1's oracle.
type RobustOptions struct {
	// Enabled turns robust screening on.
	Enabled bool
	// KFailures selects the k-node-failure family: every k-subset of a
	// candidate's locations fails at FailFrac × Duration (default 1).
	KFailures int
	// FailFrac places the hard failures as a fraction of the horizon
	// (default 0.25).
	FailFrac float64
	// IncludeCoordinator also fails the star coordinator. Off by
	// default: the paper treats the hub as the node with larger energy
	// storage (and, here, higher integrity); failing it collapses every
	// star trivially.
	IncludeCoordinator bool
	// Quantile selects the PDR order statistic the bound is enforced on:
	// 0 (default) is the strict worst case; e.g. 0.25 tolerates the worst
	// quarter of scenarios falling below the bound.
	Quantile float64
	// Scenarios, when non-empty, overrides the generated family: the same
	// explicit scenarios screen every candidate (faults at locations a
	// candidate does not use are inert).
	Scenarios []*fault.Scenario
	// PDRMin, when positive, is the reliability floor the robust
	// (worst-case / quantile) statistic is enforced against, instead of
	// Problem.PDRMin. The nominal check keeps Problem.PDRMin either way.
	// Robust floors sit necessarily below the nominal bound: with N
	// nodes and one hard failure the network PDR cannot exceed
	// (N − (1−FailFrac))/N, which is already below the paper's 0.9 for
	// every N <= 6.
	PDRMin float64
	// ProposeGamma, when positive, switches candidate generation to the
	// Γ-robust MILP relaxation (RobustCompile lowering at Γ =
	// ProposeGamma): Algorithm 1 then iterates on the protected problem,
	// proposing only designs that already survive Γ coefficient
	// deviations on paper, and the simulate-and-screen machinery above
	// demotes from gatekeeper to verifier. Setting it implies Enabled.
	ProposeGamma float64
	// Compile tunes the Γ-robust lowering (deviation magnitudes, power
	// budget) used when ProposeGamma > 0; its Gamma/PDRFloor/FailFrac
	// fields are overridden by ProposeGamma, PDRMin and FailFrac above.
	Compile RobustCompile
}

func (o Options) withDefaults() Options {
	if o.FeasTol == 0 {
		o.FeasTol = 0.001
	}
	if o.CutEpsilonMW == 0 {
		o.CutEpsilonMW = 1e-4
	}
	if o.ScreenMargin == 0 {
		o.ScreenMargin = 0.05
	}
	if o.Robust.ProposeGamma > 0 {
		o.Robust.Enabled = true
	}
	if o.Robust.Enabled {
		if o.Robust.KFailures <= 0 {
			o.Robust.KFailures = 1
		}
		if o.Robust.FailFrac <= 0 {
			o.Robust.FailFrac = fault.DefaultFailFrac
		}
	}
	return o
}

// Optimizer runs Algorithm 1 over a design problem.
type Optimizer struct {
	Problem *design.Problem
	Options Options

	// eng is the evaluation service every simulation runs through. Its
	// unified (point, fidelity, scenario) cache replaces the optimizer's
	// former private caches: a configuration is never simulated twice
	// within one optimizer's lifetime (including across a ParetoFront
	// sweep), screening results live in their own fidelity namespace —
	// a point screened out at one bound may need a full evaluation at a
	// looser bound — and the robust family is simulated once per
	// (candidate, scenario) even across bound sweeps. engErr defers an
	// invalid Workers option to Run.
	eng    *engine.Engine
	engErr error

	// evalHook, when non-nil, runs before each candidate's fresh
	// simulation (via engine.Request.Pre); tests use it to inject
	// failures and panics.
	evalHook func(design.Point)

	// fullGate, when non-nil, attaches a confidence gate to the stage-2
	// full-fidelity evaluations: replications stop early once the PDR
	// confidence interval settles decisively outside the gate's band.
	// Only the ε-constraint sweep sets this (a single-bound run keeps
	// the full budget so its reported metrics stay replication-exact);
	// the gate band must cover every bound the sweep will enforce, so a
	// gated stop can never flip a feasibility verdict.
	fullGate *netsim.Gate
}

// NewOptimizer builds an optimizer with the given options.
func NewOptimizer(pr *design.Problem, opts Options) *Optimizer {
	o := &Optimizer{Problem: pr, Options: opts.withDefaults()}
	if o.Options.Engine != nil {
		o.eng = o.Options.Engine
	} else {
		o.eng, o.engErr = engine.New(o.Options.Workers)
	}
	return o
}

// robustBound is the reliability floor the robust statistic is enforced
// against: Robust.PDRMin when set, Problem.PDRMin otherwise.
func (o *Optimizer) robustBound() float64 {
	if o.Options.Robust.PDRMin > 0 {
		return o.Options.Robust.PDRMin
	}
	return o.Problem.PDRMin
}

// robustCompile assembles the Γ-robust lowering configuration of this
// run from the robust options (zero Gamma when ProposeGamma is off, in
// which case buildRobustMILP degenerates to the nominal buildMILP).
func (o *Optimizer) robustCompile() RobustCompile {
	rc := o.Options.Robust.Compile
	rc.Gamma = o.Options.Robust.ProposeGamma
	if rc.PDRFloor <= 0 {
		rc.PDRFloor = o.robustBound()
	}
	if rc.FailFrac <= 0 {
		rc.FailFrac = o.Options.Robust.FailFrac
	}
	return rc
}

// saltKey applies Options.CacheSalt to an engine key by folding the salt
// into the scenario component (the same SplitMix64 mixing that derives
// scenario keys, so salted namespaces are as collision-resistant as the
// scenario space itself). With a zero salt the key is returned unchanged,
// preserving cross-layer cache sharing for single-tenant use.
func (o *Optimizer) saltKey(k engine.Key) engine.Key {
	if o.Options.CacheSalt != 0 {
		k.Scenario = fault.CombineKeys(o.Options.CacheSalt, k.Scenario)
	}
	return k
}

// screenSeedOffset keeps screening runs on random streams disjoint from
// the full evaluations'.
const screenSeedOffset = 7777

// adaptiveScreenBlocks splits the screening pass's Duration/5 budget into
// equal confidence-gated blocks under Options.AdaptiveReps. Eight blocks
// let a clear-cut candidate stop after 3–4 (saving half the budget or
// more — the t-quantile is still wide at 2 samples, so 2-block stops are
// rare); a borderline one still gets the whole thing. Fewer, longer
// blocks would cap the attainable savings: with 4 blocks the earliest
// realistic stop is block 3, saving only 25%.
const adaptiveScreenBlocks = 8

// alpha is the paper's α(S*, PDR_min) = P̄/P̄_lb correction, where P̄_lb
// is "the minimum power that a node must consume for the specified PDR
// bound". The analytic estimate P̄* assumes every packet is delivered;
// packet loss can reduce consumption, but not arbitrarily: a node's own
// transmissions happen regardless of delivery, while receptions (and, in
// a mesh, relay transmissions) scale at worst with the delivered fraction
// PDR_min. α therefore divides only the loss-sensitive share of the
// current best solution's power, keeping the line-5 termination bound
// conservative.
func (o *Optimizer) alpha(best design.Point) float64 {
	return o.alphaAt(best, o.Problem.PDRMin)
}

// alphaAt is alpha against an explicit reliability bound — the ε-constraint
// sweep terminates each bound's class walk with the bound being swept, not
// the problem's pinned PDRMin.
func (o *Optimizer) alphaAt(best design.Point, pdr float64) float64 {
	if pdr <= 0 {
		return 1
	}
	if pdr > 1 {
		pdr = 1
	}
	pr := o.Problem
	tx := float64(pr.Radio.TxModes[best.TxMode].ConsumptionMW)
	rx := float64(pr.Radio.RxConsumptionMW)
	n := float64(best.N())
	scale := pr.RatePPS * pr.Tpkt()
	var lb float64
	if best.Routing == netsim.Star {
		// Own transmission always happens; the 2(N−1) receptions scale
		// with delivery.
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*2*(n-1)*rx)
	} else {
		// The origin transmission always happens; relay transmissions
		// and all receptions scale with delivery.
		nre := float64(design.NreTx(best.N(), pr.NHops))
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*((nre-1)*tx+nre*(n-1)*rx))
	}
	pbar := pr.AnalyticPower(best)
	if lb <= 0 || pbar <= lb {
		return 1
	}
	return pbar / lb
}

// Run executes Algorithm 1 and returns the outcome.
func (o *Optimizer) Run() (*Outcome, error) {
	return o.RunCtx(context.Background())
}

// RunCtx is Run under a cancellation context, checked at iteration
// granularity here and at replication granularity inside the engine: a
// cancelled caller's in-flight simulation batch stops claiming work and
// the loop exits with ctx's error instead of a best-effort Outcome.
// MILP solves are not interruptible (they are CPU-bounded and short
// relative to simulation), so cancellation latency is one MILP solve
// plus one engine sub-task.
func (o *Optimizer) RunCtx(ctx context.Context) (*Outcome, error) {
	if o.engErr != nil {
		return nil, o.engErr
	}
	engStart := o.eng.Stats()
	// With Robust.ProposeGamma set the oracle iterates on the Γ-protected
	// relaxation: the protection families below are part of the warm
	// state's matrix from the start, so designs that cannot survive Γ
	// deviations never reach the simulator at all.
	mm, _, err := buildRobustMILP(o.Problem, o.robustCompile())
	if err != nil {
		return nil, err
	}
	work := mm.model.Compile()
	out := &Outcome{Status: Infeasible}
	// The MILP oracle keeps one warm solver state across iterations: the
	// pruning cuts appended by the Update step below are ingested into
	// its live tableau instead of forcing a from-scratch tree.
	var milpState *milp.State
	if !o.Options.ColdMILP {
		milpState = milp.NewState(work, milp.Options{
			DenseLP: o.Options.DenseMILP,
			Workers: o.Options.MILPWorkers,
		})
	}
	pMin := math.Inf(1) // P̄_min: best simulated power of a feasible config
	progress := o.Options.Progress
	if progress == nil {
		progress = func(string, ...interface{}) {}
	}
	start := time.Now()

	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.Options.MaxIterations > 0 && iter >= o.Options.MaxIterations {
			progress("iter %d: iteration budget exhausted", iter)
			out.Status = StatusBudgetExceeded
			break
		}
		if o.Options.MaxWallClock > 0 && time.Since(start) >= o.Options.MaxWallClock {
			progress("iter %d: wall-clock budget exhausted (%s)", iter, o.Options.MaxWallClock)
			out.Status = StatusBudgetExceeded
			break
		}
		var pool []milp.PoolSolution
		var agg *milp.Solution
		var err error
		if milpState != nil {
			pool, agg, err = milpState.SolvePool(o.Options.PoolLimit, 1e-6)
		} else {
			pool, agg, err = milp.SolvePool(work, milp.Options{}, o.Options.PoolLimit, 1e-6)
		}
		if err != nil {
			return nil, err
		}
		out.MILPNodes += agg.Nodes
		out.LPIterations += agg.LPIterations
		out.MILPWarmSolves += agg.WarmSolves
		out.MILPColdSolves += agg.ColdSolves
		out.MILPRefactorizations += agg.Refactorizations
		out.MILPParallelDives += agg.ParallelDives
		out.PresolveFixedVars = agg.PresolveFixed
		out.PresolveDroppedRows = agg.PresolveDropped
		out.PresolveTightenedCoefs = agg.PresolveTightened

		if agg.Status != milp.Optimal || len(pool) == 0 {
			// Line 4/5: no further candidates. Either infeasible overall
			// or the incumbent is the proven optimum.
			progress("iter %d: MILP exhausted (%s)", iter, agg.Status)
			break
		}
		pStar := agg.Objective
		if !o.Options.DisableAlphaBound && out.Best != nil && pStar/o.alpha(out.Best.Point) > pMin {
			// Line 5: even after the α correction, every remaining
			// candidate must simulate above the incumbent.
			progress("iter %d: α-bound termination (P̄*=%.4g, P̄min=%.4g)", iter, pStar, pMin)
			out.TerminatedByAlpha = true
			break
		}

		// Decode and defensively verify the pool.
		points := make([]design.Point, len(pool))
		for i, ps := range pool {
			if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
				return nil, fmt.Errorf("core: MILP returned infeasible pool member: %v", err)
			}
			if err := mm.checkExactness(o.Problem, ps.X); err != nil {
				return nil, err
			}
			points[i] = mm.decode(ps.X)
		}

		// Line 7: RunSim over the candidate set (parallel, cached).
		evals, stats, err := o.simulateAll(ctx, points)
		if err != nil {
			return nil, err
		}
		out.Evaluations += len(points)
		out.Simulations += stats.runs
		out.ScreenedOut += stats.screenedOut
		out.SimulatedSeconds += stats.seconds
		out.RepsSaved += stats.savedRuns
		out.SavedSeconds += stats.savedSeconds

		it := Iteration{PBarStar: pStar}
		for i, p := range points {
			e := evals[i]
			cand := Candidate{
				Point:         p,
				AnalyticMW:    o.Problem.AnalyticPower(p),
				PDR:           e.res.PDR,
				PowerMW:       float64(e.res.MaxPower),
				NLTDays:       e.res.NLTDays,
				WorstPDR:      e.res.PDR,
				WorstScenario: e.worstScenario,
				MeanLatency:   e.res.MeanLatency,
				P95Latency:    e.res.P95Latency,
			}
			cand.Feasible = cand.PDR >= o.Problem.PDRMin-o.Options.FeasTol
			if e.robust {
				cand.WorstPDR = e.worstPDR
				robustOK := e.screenPDR >= o.robustBound()-o.Options.FeasTol
				if cand.Feasible && !robustOK {
					out.RobustRejected++
				}
				cand.Feasible = cand.Feasible && robustOK
			}
			it.Candidates = append(it.Candidates, cand)
			if cand.Feasible {
				it.FeasibleCount++
			}
		}
		// Line 8/9/10: Sort feasible candidates by simulated power and
		// update the incumbent.
		sort.SliceStable(it.Candidates, func(a, b int) bool {
			return it.Candidates[a].PowerMW < it.Candidates[b].PowerMW
		})
		for i := range it.Candidates {
			c := it.Candidates[i]
			if c.Feasible && c.PowerMW < pMin {
				pMin = c.PowerMW
				best := c
				out.Best = &best
				out.Status = Optimal
			}
		}
		out.Iterations = append(out.Iterations, it)
		progress("iter %d: P̄*=%.4g mW, pool=%d, feasible=%d, P̄min=%.4g",
			iter, pStar, len(pool), it.FeasibleCount, pMin)
		if o.Options.OnIteration != nil {
			ev := IterationEvent{
				Iter: iter, PBarStar: pStar,
				PoolSize: len(pool), FeasibleCount: it.FeasibleCount,
			}
			if out.Best != nil {
				ev.BestPowerMW = pMin
				ev.BestPoint = fmt.Sprintf("%v", out.Best.Point)
			}
			o.Options.OnIteration(ev)
		}

		// Line 11: Update(P̃, P̄ > P̄*) — prune the explored power class.
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, pStar+o.Options.CutEpsilonMW)
	}
	out.Engine = o.eng.Stats().Sub(engStart)
	return out, nil
}

// simStats aggregates the cost of one simulateAll batch.
type simStats struct {
	// runs counts fresh simulator runs (screen runs included).
	runs int
	// screenedOut counts candidates the screening pass rejected.
	screenedOut int
	// seconds totals fresh simulated time.
	seconds float64
	// savedRuns and savedSeconds count the work AdaptiveReps avoided:
	// the engine's gated-replication savings plus robust scenario
	// evaluations skipped by the family short-circuit.
	savedRuns    int
	savedSeconds float64
}

// pointEval is one candidate's evaluation outcome: the nominal result
// plus, when robust screening ran, the scenario-family PDR statistics.
type pointEval struct {
	res *netsim.Result
	// robust reports whether the scenario family was evaluated (it is
	// skipped for nominally infeasible candidates — they are rejected
	// either way).
	robust bool
	// screenPDR is the statistic the bound is enforced on (the
	// Quantile-selected order statistic; equals worstPDR at quantile 0).
	// worstPDR is the strict minimum and worstScenario its label.
	screenPDR     float64
	worstPDR      float64
	worstScenario string
}

// simulateAll evaluates a candidate set through the engine in three
// batched stages — the optional two-stage screening pass, the
// full-fidelity evaluations, and the optional robust scenario families —
// and returns per-point evaluations plus the batch's fresh-simulation
// cost (measured as the engine's counter delta). Screening and robust
// decisions are made once per distinct candidate; the engine's cache and
// singleflight handle duplicates and cross-iteration reuse. Panics and
// errors inside evaluations surface as the engine's deterministic joined
// error.
func (o *Optimizer) simulateAll(ctx context.Context, points []design.Point) ([]pointEval, simStats, error) {
	var stats simStats
	if o.engErr != nil {
		return nil, stats, o.engErr
	}
	engStart := o.eng.Stats()
	// skippedRuns/skippedSeconds accumulate the robust stage's
	// family-short-circuit savings; the engine delta contributes the
	// replication-gate savings on the runs that did start.
	var skippedRuns int
	var skippedSeconds float64
	collect := func() {
		d := o.eng.Stats().Sub(engStart)
		stats.runs = int(d.SimRuns)
		stats.seconds = d.SimSeconds()
		stats.savedRuns = int(d.RepsSaved) + skippedRuns
		stats.savedSeconds = d.SavedSeconds + skippedSeconds
	}

	// Distinct candidates in first-appearance order.
	uniq := points[:0:0]
	idxOf := make(map[uint32][]int, len(points))
	for i, p := range points {
		k := p.Key()
		if _, seen := idxOf[k]; !seen {
			uniq = append(uniq, p)
		}
		idxOf[k] = append(idxOf[k], i)
	}

	pre := func(p design.Point) func() {
		if o.evalHook == nil {
			return nil
		}
		return func() { o.evalHook(p) }
	}

	// Stage 1 (TwoStage): cheap screening of candidates without a cached
	// full-fidelity result; for the clearly infeasible ones the short
	// estimate is final.
	screened := make(map[uint32]*netsim.Result)
	need := uniq
	if o.Options.TwoStage {
		var toScreen []design.Point
		for _, p := range uniq {
			if !o.eng.Cached(o.saltKey(engine.PointKey(p.Key()))) {
				toScreen = append(toScreen, p)
			}
		}
		reqs := make([]engine.Request, len(toScreen))
		for i, p := range toScreen {
			cfg := o.Problem.Config(p)
			cfg.Duration /= 5
			reqs[i] = engine.Request{
				Cfg: cfg, Runs: 1, Seed: o.Problem.Seed + screenSeedOffset,
				Key: o.saltKey(engine.ScreenKey(p.Key())), Label: fmt.Sprintf("%v", p), Pre: pre(p),
			}
			if o.Options.AdaptiveReps {
				// Same Duration/5 worst-case budget, split into equal
				// blocks the confidence gate can cut short. Screening runs
				// are fault-free, so shortening the horizon is safe (fault
				// times scale with Duration and would move otherwise). The
				// 90% gate confidence is deliberate: the exhaustive screen
				// decides from a raw point estimate with no confidence
				// test at all, so any gated stop is more protective, and
				// the looser quantile lets clear-cut candidates stop
				// blocks earlier.
				reqs[i].Cfg.Duration /= adaptiveScreenBlocks
				reqs[i].Runs = adaptiveScreenBlocks
				reqs[i].Adaptive = &netsim.Gate{
					PDRMin: o.Problem.PDRMin, Margin: o.Options.ScreenMargin,
					Confidence: 0.9,
				}
			}
		}
		srs, err := o.eng.EvaluateBatchCtx(ctx, reqs, nil)
		if err != nil {
			collect()
			return nil, stats, err
		}
		for i, p := range toScreen {
			if srs[i].PDR < o.Problem.PDRMin-o.Options.ScreenMargin {
				screened[p.Key()] = srs[i]
				stats.screenedOut++
			}
		}
		need = nil
		for _, p := range uniq {
			if _, out := screened[p.Key()]; !out {
				need = append(need, p)
			}
		}
	}

	// Stage 2: full-fidelity evaluation of the surviving candidates.
	reqs := make([]engine.Request, len(need))
	for i, p := range need {
		reqs[i] = engine.Request{
			Cfg: o.Problem.Config(p), Runs: o.Problem.Runs, Seed: o.Problem.Seed,
			Key: o.saltKey(engine.PointKey(p.Key())), Label: fmt.Sprintf("%v", p), Pre: pre(p),
		}
		if o.fullGate != nil {
			reqs[i].Adaptive = o.fullGate
		}
	}
	frs, err := o.eng.EvaluateBatchCtx(ctx, reqs, nil)
	if err != nil {
		collect()
		return nil, stats, err
	}
	full := make(map[uint32]*netsim.Result, len(need))
	for i, p := range need {
		full[p.Key()] = frs[i]
	}

	// Stage 3: the robust scenario families. Only nominally feasible
	// candidates face the adversary: the others are rejected either way,
	// and the family costs |scenarios| full-fidelity evaluations each.
	// The feasibility statistic is recomputed per call from the (cached)
	// family results — the bound may have changed across a ParetoFront
	// sweep.
	robust := make(map[uint32]robustStats)
	if o.Options.Robust.Enabled {
		var jobs []famJob
		for _, p := range need {
			if full[p.Key()].PDR < o.Problem.PDRMin-o.Options.FeasTol {
				continue
			}
			jobs = append(jobs, famJob{p: p, scenarios: o.scenariosFor(p)})
		}
		var err error
		if o.Options.AdaptiveReps {
			err = o.robustAdaptive(ctx, jobs, full, pre, robust, &skippedRuns, &skippedSeconds)
		} else {
			err = o.robustExhaustive(ctx, jobs, full, pre, robust)
		}
		if err != nil {
			collect()
			return nil, stats, err
		}
	}

	// Fan the per-candidate outcomes back to every submitted index.
	evals := make([]pointEval, len(points))
	for _, p := range uniq {
		k := p.Key()
		var pe pointEval
		if sr, isOut := screened[k]; isOut {
			pe = pointEval{res: sr}
		} else {
			pe = pointEval{res: full[k]}
			if rs, ok := robust[k]; ok {
				pe.robust = true
				pe.screenPDR = rs.screenPDR
				pe.worstPDR = rs.worstPDR
				pe.worstScenario = rs.worstScenario
			}
		}
		for _, i := range idxOf[k] {
			evals[i] = pe
		}
	}
	collect()
	return evals, stats, nil
}

// robustStats is the scenario-family PDR summary of one candidate.
type robustStats struct {
	screenPDR     float64
	worstPDR      float64
	worstScenario string
}

// famJob is one nominally feasible candidate's fault-scenario family in
// the robust stage.
type famJob struct {
	p         design.Point
	scenarios []*fault.Scenario
}

// quantileIndex is the order-statistic index the Quantile bound is
// enforced on over an n-scenario family — equivalently, the number of
// breaching scenarios the family tolerates before its verdict is sealed.
func (o *Optimizer) quantileIndex(n int) int {
	idx := int(math.Floor(o.Options.Robust.Quantile * float64(n)))
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// robustExhaustive evaluates every family in full, as one flat batch
// reduced per candidate in family order.
func (o *Optimizer) robustExhaustive(ctx context.Context, jobs []famJob, full map[uint32]*netsim.Result, pre func(design.Point) func(), robust map[uint32]robustStats) error {
	var rreqs []engine.Request
	base := make([]int, len(jobs))
	for ji, job := range jobs {
		base[ji] = len(rreqs)
		for _, sc := range job.scenarios {
			cfg := o.Problem.Config(job.p)
			cfg.Scenario = sc
			rreqs = append(rreqs, engine.Request{
				Cfg: cfg, Runs: o.Problem.Runs, Seed: o.Problem.Seed,
				Key:   o.saltKey(engine.ScenarioKey(job.p.Key(), sc.Key())),
				Label: fmt.Sprintf("%v under %s", job.p, sc.Label()), Pre: pre(job.p),
			})
		}
	}
	rres, err := o.eng.EvaluateBatchCtx(ctx, rreqs, nil)
	if err != nil {
		return err
	}
	for ji, job := range jobs {
		rs := robustStats{screenPDR: math.Inf(1), worstPDR: math.Inf(1)}
		if len(job.scenarios) == 0 {
			nominal := full[job.p.Key()]
			rs.screenPDR, rs.worstPDR = nominal.PDR, nominal.PDR
		} else {
			pdrs := make([]float64, 0, len(job.scenarios))
			for si, sc := range job.scenarios {
				r := rres[base[ji]+si]
				pdrs = append(pdrs, r.PDR)
				if r.PDR < rs.worstPDR {
					rs.worstPDR = r.PDR
					rs.worstScenario = sc.Label()
				}
			}
			sort.Float64s(pdrs)
			rs.screenPDR = pdrs[o.quantileIndex(len(pdrs))]
		}
		robust[job.p.Key()] = rs
	}
	return nil
}

// robustAdaptive evaluates the families wave by wave — wave w submits the
// w-th scenario of every still-undecided family as one batch — and stops
// a family as soon as its breach count exceeds what the Quantile order
// statistic tolerates: the verdict is then sealed infeasible whatever the
// remaining scenarios measure, so they are skipped (credited to the
// savings counters at their full replication budget). Each scenario
// request also carries the confidence gate, letting its replications stop
// early against PDRMin ± FeasTol. A family that stays undecided runs
// exhaustively and reduces to the same order statistic as
// robustExhaustive; a sealed family reports the order statistic over its
// evaluated prefix, which the breach count already pins below the bound.
func (o *Optimizer) robustAdaptive(ctx context.Context, jobs []famJob, full map[uint32]*netsim.Result, pre func(design.Point) func(), robust map[uint32]robustStats, skippedRuns *int, skippedSeconds *float64) error {
	bound := o.robustBound() - o.Options.FeasTol
	gate := &netsim.Gate{PDRMin: o.robustBound(), Margin: o.Options.FeasTol}
	type famState struct {
		job       famJob
		pdrs      []float64
		breaches  int
		decided   bool
		worstPDR  float64
		worstScen string
	}
	var states []*famState
	maxFam := 0
	for _, job := range jobs {
		if len(job.scenarios) == 0 {
			nominal := full[job.p.Key()]
			robust[job.p.Key()] = robustStats{screenPDR: nominal.PDR, worstPDR: nominal.PDR}
			continue
		}
		states = append(states, &famState{job: job, worstPDR: math.Inf(1)})
		if len(job.scenarios) > maxFam {
			maxFam = len(job.scenarios)
		}
	}
	for wave := 0; wave < maxFam; wave++ {
		var reqs []engine.Request
		var active []*famState
		for _, fs := range states {
			if fs.decided || wave >= len(fs.job.scenarios) {
				continue
			}
			sc := fs.job.scenarios[wave]
			cfg := o.Problem.Config(fs.job.p)
			cfg.Scenario = sc
			reqs = append(reqs, engine.Request{
				Cfg: cfg, Runs: o.Problem.Runs, Seed: o.Problem.Seed,
				Key:      o.saltKey(engine.ScenarioKey(fs.job.p.Key(), sc.Key())),
				Label:    fmt.Sprintf("%v under %s", fs.job.p, sc.Label()),
				Pre:      pre(fs.job.p),
				Adaptive: gate,
			})
			active = append(active, fs)
		}
		if len(reqs) == 0 {
			break
		}
		res, err := o.eng.EvaluateBatchCtx(ctx, reqs, nil)
		if err != nil {
			return err
		}
		for i, fs := range active {
			r := res[i]
			fs.pdrs = append(fs.pdrs, r.PDR)
			if r.PDR < fs.worstPDR {
				fs.worstPDR = r.PDR
				fs.worstScen = fs.job.scenarios[wave].Label()
			}
			if r.PDR < bound {
				fs.breaches++
			}
			if fs.breaches > o.quantileIndex(len(fs.job.scenarios)) {
				fs.decided = true
			}
		}
	}
	runs := max(1, o.Problem.Runs)
	for _, fs := range states {
		if skipped := len(fs.job.scenarios) - len(fs.pdrs); skipped > 0 {
			*skippedRuns += skipped * runs
			*skippedSeconds += float64(skipped*runs) * o.Problem.Duration
		}
		sorted := append([]float64(nil), fs.pdrs...)
		sort.Float64s(sorted)
		idx := o.quantileIndex(len(fs.job.scenarios))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		robust[fs.job.p.Key()] = robustStats{
			screenPDR:     sorted[idx],
			worstPDR:      fs.worstPDR,
			worstScenario: fs.worstScen,
		}
	}
	return nil
}

// scenariosFor returns the fault-scenario family a candidate is screened
// against: the explicit override when configured, otherwise the
// k-node-failure family over the candidate's own locations (coordinator
// excluded for stars unless IncludeCoordinator).
func (o *Optimizer) scenariosFor(p design.Point) []*fault.Scenario {
	ro := o.Options.Robust
	if len(ro.Scenarios) > 0 {
		return ro.Scenarios
	}
	exclude := -1
	if p.Routing == netsim.Star && !ro.IncludeCoordinator {
		exclude = o.Problem.Config(p).CoordinatorLoc
	}
	g := fault.ScenarioGen{Seed: o.Problem.Seed, FailFrac: ro.FailFrac}
	return g.KNodeFailures(p.Locations(), exclude, ro.KFailures, o.Problem.Duration)
}

// ParetoPoint is one point of the reliability–lifetime trade-off front.
type ParetoPoint struct {
	// PDRMin is the reliability bound this point was optimized for.
	PDRMin float64
	// Best is the optimal configuration (nil when the bound is
	// infeasible).
	Best *Candidate
	// Outcome carries the full search record.
	Outcome *Outcome
}

// ParetoFront runs Algorithm 1 across a sweep of reliability bounds and
// returns the resulting lifetime-versus-reliability trade-off curve (the
// arrows of the paper's Fig. 3). All runs share one simulation cache —
// a configuration's simulated metrics do not depend on PDRMin — so the
// sweep costs far less than independent optimizations.
//
// The problem's PDRMin field is overwritten during the sweep and left at
// the last bound.
func ParetoFront(pr *design.Problem, bounds []float64, opts Options) ([]ParetoPoint, error) {
	if len(bounds) == 0 {
		bounds = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	}
	o := NewOptimizer(pr, opts)
	var front []ParetoPoint
	for _, b := range bounds {
		pr.PDRMin = b
		out, err := o.Run()
		if err != nil {
			return nil, err
		}
		front = append(front, ParetoPoint{PDRMin: b, Best: out.Best, Outcome: out})
	}
	return front, nil
}

// WriteRelaxationLP renders the MILP relaxation P̃ of a problem in CPLEX
// LP file format, for cross-checking against external solvers.
func WriteRelaxationLP(pr *design.Problem, w io.Writer) error {
	mm, err := buildMILP(pr)
	if err != nil {
		return err
	}
	return mm.model.Compile().WriteLP(w)
}

// CompileMILP lowers a problem to its compiled MILP relaxation P̃ and
// returns it with the Eq. (9) objective expression — the pair needed to
// drive the raw Algorithm 1 oracle loop (SolvePool, then prune with
// AddExprRow(objective ≥ P̄* + ε)) outside the optimizer, e.g. from the
// MILP benchmarks. An optional RobustCompile switches to the Γ-protected
// lowering (with Gamma == 0 the output is bit-identical to the nominal
// compilation); use CompileMILPRobust to also get the retarget handle.
func CompileMILP(pr *design.Problem, robust ...RobustCompile) (*linexpr.Compiled, linexpr.Expr, error) {
	var rc RobustCompile
	if len(robust) > 0 {
		rc = robust[0]
	}
	mm, _, err := buildRobustMILP(pr, rc)
	if err != nil {
		return nil, linexpr.Expr{}, err
	}
	return mm.model.Compile(), mm.objective, nil
}

// FirstPool returns the decoded MILP solution pool of Algorithm 1's first
// iteration — the cheapest power class of the relaxed problem P̃ — without
// running any simulations. It is useful for inspecting what the candidate
// generator proposes and for benchmarking the MILP oracle in isolation.
func FirstPool(pr *design.Problem) ([]design.Point, error) {
	mm, err := buildMILP(pr)
	if err != nil {
		return nil, err
	}
	pool, agg, err := milp.NewState(mm.model.Compile(), milp.Options{}).SolvePool(0, 1e-6)
	if err != nil {
		return nil, err
	}
	if agg.Status != milp.Optimal {
		return nil, nil
	}
	points := make([]design.Point, len(pool))
	for i, ps := range pool {
		points[i] = mm.decode(ps.X)
	}
	return points, nil
}
