package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"hiopt/internal/design"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// Status is the outcome class of an optimization run.
type Status int

const (
	// Optimal means a feasible configuration was found and proven
	// minimal-power under the α bound / exhaustion criterion.
	Optimal Status = iota
	// Infeasible means no configuration satisfies the constraints and the
	// reliability bound.
	Infeasible
)

func (s Status) String() string {
	if s == Optimal {
		return "optimal"
	}
	return "infeasible"
}

// Candidate is one simulated design point with its measured metrics.
type Candidate struct {
	Point design.Point
	// AnalyticMW is the Eq. (9) estimate P̄ the MILP optimized.
	AnalyticMW float64
	// PDR and PowerMW are the simulated metrics (averaged over runs).
	PDR     float64
	PowerMW float64
	// NLTDays is the simulated network lifetime.
	NLTDays float64
	// Feasible reports PDR >= PDRMin − FeasTol.
	Feasible bool
}

// Iteration records one RunMILP → RunSim round for reporting.
type Iteration struct {
	// PBarStar is the MILP optimum P̄* of the round.
	PBarStar float64
	// Candidates are the pool members with simulation results.
	Candidates []Candidate
	// FeasibleCount is how many met the reliability bound.
	FeasibleCount int
}

// Outcome is the result of an Algorithm 1 run.
type Outcome struct {
	Status Status
	// Best is the selected configuration (nil when infeasible).
	Best *Candidate
	// Iterations traces the search.
	Iterations []Iteration
	// Evaluations counts distinct configurations simulated; Simulations
	// counts individual simulator runs (Evaluations × Runs, minus cache
	// hits).
	Evaluations int
	Simulations int
	// ScreenedOut counts candidates rejected by the two-stage screening
	// pass without a full-fidelity evaluation (0 unless TwoStage).
	ScreenedOut int
	// SimulatedSeconds totals the simulated time across all runs — the
	// fidelity-independent cost metric (a screening run contributes
	// Duration/5, a full evaluation Duration × Runs).
	SimulatedSeconds float64
	// MILPNodes and LPIterations aggregate solver effort.
	MILPNodes    int
	LPIterations int
	// TerminatedByAlpha reports whether the α bound (line 5 of
	// Algorithm 1) stopped the search before MILP exhaustion.
	TerminatedByAlpha bool
}

// Options tune Algorithm 1.
type Options struct {
	// PoolLimit caps the MILP solution pool per iteration (0 =
	// unlimited, the paper's behaviour).
	PoolLimit int
	// DisableAlphaBound turns off the line-5 early termination (used by
	// the ablation study; the algorithm then runs until MILP exhaustion).
	DisableAlphaBound bool
	// FeasTol relaxes the reliability check to PDR >= PDRMin − FeasTol,
	// reflecting the ±ε estimation error of finite simulations (the
	// paper sizes T_sim to keep the estimate within a tolerance ε of the
	// true probability; the default here is 0.1%, which at the paper's
	// T_sim = 600 s × 3 runs is several standard errors of the PDR
	// estimator).
	FeasTol float64
	// CutEpsilonMW is the strictness margin of the Update step's
	// P̄ > P̄* cut. It must sit well above the MILP integrality
	// tolerance (else near-integral LP points can cheat the cut) and
	// well below the smallest separation between distinct power classes
	// (~15 µW for the CC2650 Tx modes); the default is 0.1 µW.
	CutEpsilonMW float64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// TwoStage enables a cheap screening pass before the full-fidelity
	// evaluation of each candidate: a single run at Duration/5 first,
	// and only candidates within ScreenMargin of the reliability bound
	// (or above it) receive the full T_sim × Runs treatment. This
	// implements the paper's observation that T_sim only needs to bound
	// the PDR estimation error relative to the decision being made:
	// clearly infeasible candidates don't need tight estimates.
	TwoStage bool
	// ScreenMargin is the rejection band of the screening pass (default
	// 0.05 — roughly 3σ of the short run's PDR estimator).
	ScreenMargin float64
	// Progress, when non-nil, receives a line per iteration.
	Progress func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.FeasTol == 0 {
		o.FeasTol = 0.001
	}
	if o.CutEpsilonMW == 0 {
		o.CutEpsilonMW = 1e-4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ScreenMargin == 0 {
		o.ScreenMargin = 0.05
	}
	return o
}

// Optimizer runs Algorithm 1 over a design problem.
type Optimizer struct {
	Problem *design.Problem
	Options Options

	// cache holds full-fidelity simulation results by point key so a
	// configuration is never simulated twice within one optimizer's
	// lifetime (including across a ParetoFront sweep). screenCache holds
	// the cheap screening results separately — a point screened out at
	// one bound may need a full evaluation at a looser bound.
	cache       map[uint32]*netsim.Result
	screenCache map[uint32]*netsim.Result
	mu          sync.Mutex

	// evPool recycles netsim evaluators (DES kernel + result scratch)
	// across candidates and iterations, keeping the simulation hot path
	// allocation-free. Each worker goroutine checks one out for the
	// duration of a candidate's evaluation.
	evPool sync.Pool
}

// NewOptimizer builds an optimizer with the given options.
func NewOptimizer(pr *design.Problem, opts Options) *Optimizer {
	return &Optimizer{
		Problem:     pr,
		Options:     opts.withDefaults(),
		cache:       make(map[uint32]*netsim.Result),
		screenCache: make(map[uint32]*netsim.Result),
		evPool:      sync.Pool{New: func() any { return netsim.NewEvaluator() }},
	}
}

// screenSeedOffset keeps screening runs on random streams disjoint from
// the full evaluations'.
const screenSeedOffset = 7777

// screen runs (or recalls) the cheap screening simulation of a point.
func (o *Optimizer) screen(ev *netsim.Evaluator, p design.Point) (*netsim.Result, bool, error) {
	o.mu.Lock()
	if r, ok := o.screenCache[p.Key()]; ok {
		o.mu.Unlock()
		return r, true, nil
	}
	o.mu.Unlock()
	cfg := o.Problem.Config(p)
	cfg.Duration /= 5
	r, err := ev.RunAveraged(cfg, 1, o.Problem.Seed+screenSeedOffset)
	if err != nil {
		return nil, false, err
	}
	o.mu.Lock()
	o.screenCache[p.Key()] = r
	o.mu.Unlock()
	return r, false, nil
}

// alpha is the paper's α(S*, PDR_min) = P̄/P̄_lb correction, where P̄_lb
// is "the minimum power that a node must consume for the specified PDR
// bound". The analytic estimate P̄* assumes every packet is delivered;
// packet loss can reduce consumption, but not arbitrarily: a node's own
// transmissions happen regardless of delivery, while receptions (and, in
// a mesh, relay transmissions) scale at worst with the delivered fraction
// PDR_min. α therefore divides only the loss-sensitive share of the
// current best solution's power, keeping the line-5 termination bound
// conservative.
func (o *Optimizer) alpha(best design.Point) float64 {
	pdr := o.Problem.PDRMin
	if pdr <= 0 {
		return 1
	}
	if pdr > 1 {
		pdr = 1
	}
	pr := o.Problem
	tx := float64(pr.Radio.TxModes[best.TxMode].ConsumptionMW)
	rx := float64(pr.Radio.RxConsumptionMW)
	n := float64(best.N())
	scale := pr.RatePPS * pr.Tpkt()
	var lb float64
	if best.Routing == netsim.Star {
		// Own transmission always happens; the 2(N−1) receptions scale
		// with delivery.
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*2*(n-1)*rx)
	} else {
		// The origin transmission always happens; relay transmissions
		// and all receptions scale with delivery.
		nre := float64(design.NreTx(best.N(), pr.NHops))
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*((nre-1)*tx+nre*(n-1)*rx))
	}
	pbar := pr.AnalyticPower(best)
	if lb <= 0 || pbar <= lb {
		return 1
	}
	return pbar / lb
}

// Run executes Algorithm 1 and returns the outcome.
func (o *Optimizer) Run() (*Outcome, error) {
	mm, err := buildMILP(o.Problem)
	if err != nil {
		return nil, err
	}
	work := mm.model.Compile()
	out := &Outcome{Status: Infeasible}
	pMin := math.Inf(1) // P̄_min: best simulated power of a feasible config
	progress := o.Options.Progress
	if progress == nil {
		progress = func(string, ...interface{}) {}
	}

	for iter := 0; ; iter++ {
		pool, agg, err := milp.SolvePool(work, milp.Options{}, o.Options.PoolLimit, 1e-6)
		if err != nil {
			return nil, err
		}
		out.MILPNodes += agg.Nodes
		out.LPIterations += agg.LPIterations

		if agg.Status != milp.Optimal || len(pool) == 0 {
			// Line 4/5: no further candidates. Either infeasible overall
			// or the incumbent is the proven optimum.
			progress("iter %d: MILP exhausted (%s)", iter, agg.Status)
			break
		}
		pStar := agg.Objective
		if !o.Options.DisableAlphaBound && out.Best != nil && pStar/o.alpha(out.Best.Point) > pMin {
			// Line 5: even after the α correction, every remaining
			// candidate must simulate above the incumbent.
			progress("iter %d: α-bound termination (P̄*=%.4g, P̄min=%.4g)", iter, pStar, pMin)
			out.TerminatedByAlpha = true
			break
		}

		// Decode and defensively verify the pool.
		points := make([]design.Point, len(pool))
		for i, ps := range pool {
			if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
				return nil, fmt.Errorf("core: MILP returned infeasible pool member: %v", err)
			}
			if err := mm.checkExactness(o.Problem, ps.X); err != nil {
				return nil, err
			}
			points[i] = mm.decode(ps.X)
		}

		// Line 7: RunSim over the candidate set (parallel, cached).
		results, stats, err := o.simulateAll(points)
		if err != nil {
			return nil, err
		}
		out.Evaluations += len(points)
		out.Simulations += stats.runs
		out.ScreenedOut += stats.screenedOut
		out.SimulatedSeconds += stats.seconds

		it := Iteration{PBarStar: pStar}
		for i, p := range points {
			cand := Candidate{
				Point:      p,
				AnalyticMW: o.Problem.AnalyticPower(p),
				PDR:        results[i].PDR,
				PowerMW:    float64(results[i].MaxPower),
				NLTDays:    results[i].NLTDays,
			}
			cand.Feasible = cand.PDR >= o.Problem.PDRMin-o.Options.FeasTol
			it.Candidates = append(it.Candidates, cand)
			if cand.Feasible {
				it.FeasibleCount++
			}
		}
		// Line 8/9/10: Sort feasible candidates by simulated power and
		// update the incumbent.
		sort.SliceStable(it.Candidates, func(a, b int) bool {
			return it.Candidates[a].PowerMW < it.Candidates[b].PowerMW
		})
		for i := range it.Candidates {
			c := it.Candidates[i]
			if c.Feasible && c.PowerMW < pMin {
				pMin = c.PowerMW
				best := c
				out.Best = &best
				out.Status = Optimal
			}
		}
		out.Iterations = append(out.Iterations, it)
		progress("iter %d: P̄*=%.4g mW, pool=%d, feasible=%d, P̄min=%.4g",
			iter, pStar, len(pool), it.FeasibleCount, pMin)

		// Line 11: Update(P̃, P̄ > P̄*) — prune the explored power class.
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, pStar+o.Options.CutEpsilonMW)
	}
	return out, nil
}

// simStats aggregates the cost of one simulateAll batch.
type simStats struct {
	// runs counts fresh simulator runs (screen runs included).
	runs int
	// screenedOut counts candidates the screening pass rejected.
	screenedOut int
	// seconds totals fresh simulated time.
	seconds float64
}

// simulateAll evaluates a candidate set concurrently, consulting the
// cross-iteration cache and (optionally) the two-stage screening pass. It
// returns per-point results and the batch's fresh-simulation cost.
func (o *Optimizer) simulateAll(points []design.Point) ([]*netsim.Result, simStats, error) {
	results := make([]*netsim.Result, len(points))
	// jobs maps each distinct uncached key to the point indices wanting
	// it, so within-batch duplicates are simulated once.
	jobs := make(map[uint32][]int)
	o.mu.Lock()
	for i, p := range points {
		if r, ok := o.cache[p.Key()]; ok {
			results[i] = r
		} else {
			jobs[p.Key()] = append(jobs[p.Key()], i)
		}
	}
	o.mu.Unlock()

	var stats simStats
	var statsMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	sem := make(chan struct{}, o.Options.Workers)
	fullRuns := maxInt(1, o.Problem.Runs)
	for _, idxs := range jobs {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ev := o.evPool.Get().(*netsim.Evaluator)
			defer o.evPool.Put(ev)
			p := points[idxs[0]]
			fail := func(err error) {
				select {
				case errCh <- err:
				default:
				}
			}
			if o.Options.TwoStage {
				sr, cached, err := o.screen(ev, p)
				if err != nil {
					fail(err)
					return
				}
				statsMu.Lock()
				if !cached {
					stats.runs++
					stats.seconds += o.Problem.Duration / 5
				}
				statsMu.Unlock()
				if sr.PDR < o.Problem.PDRMin-o.Options.ScreenMargin {
					// Clearly infeasible: the cheap estimate is final.
					statsMu.Lock()
					stats.screenedOut++
					statsMu.Unlock()
					for _, i := range idxs {
						results[i] = sr
					}
					return
				}
			}
			r, err := o.Problem.EvaluateWith(ev, p)
			if err != nil {
				fail(err)
				return
			}
			o.mu.Lock()
			o.cache[p.Key()] = r
			o.mu.Unlock()
			statsMu.Lock()
			stats.runs += fullRuns
			stats.seconds += o.Problem.Duration * float64(fullRuns)
			statsMu.Unlock()
			for _, i := range idxs {
				results[i] = r
			}
		}(idxs)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, stats, err
	default:
	}
	return results, stats, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParetoPoint is one point of the reliability–lifetime trade-off front.
type ParetoPoint struct {
	// PDRMin is the reliability bound this point was optimized for.
	PDRMin float64
	// Best is the optimal configuration (nil when the bound is
	// infeasible).
	Best *Candidate
	// Outcome carries the full search record.
	Outcome *Outcome
}

// ParetoFront runs Algorithm 1 across a sweep of reliability bounds and
// returns the resulting lifetime-versus-reliability trade-off curve (the
// arrows of the paper's Fig. 3). All runs share one simulation cache —
// a configuration's simulated metrics do not depend on PDRMin — so the
// sweep costs far less than independent optimizations.
//
// The problem's PDRMin field is overwritten during the sweep and left at
// the last bound.
func ParetoFront(pr *design.Problem, bounds []float64, opts Options) ([]ParetoPoint, error) {
	if len(bounds) == 0 {
		bounds = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	}
	o := NewOptimizer(pr, opts)
	var front []ParetoPoint
	for _, b := range bounds {
		pr.PDRMin = b
		out, err := o.Run()
		if err != nil {
			return nil, err
		}
		front = append(front, ParetoPoint{PDRMin: b, Best: out.Best, Outcome: out})
	}
	return front, nil
}

// WriteRelaxationLP renders the MILP relaxation P̃ of a problem in CPLEX
// LP file format, for cross-checking against external solvers.
func WriteRelaxationLP(pr *design.Problem, w io.Writer) error {
	mm, err := buildMILP(pr)
	if err != nil {
		return err
	}
	return mm.model.Compile().WriteLP(w)
}

// FirstPool returns the decoded MILP solution pool of Algorithm 1's first
// iteration — the cheapest power class of the relaxed problem P̃ — without
// running any simulations. It is useful for inspecting what the candidate
// generator proposes and for benchmarking the MILP oracle in isolation.
func FirstPool(pr *design.Problem) ([]design.Point, error) {
	mm, err := buildMILP(pr)
	if err != nil {
		return nil, err
	}
	pool, agg, err := milp.SolvePool(mm.model.Compile(), milp.Options{}, 0, 1e-6)
	if err != nil {
		return nil, err
	}
	if agg.Status != milp.Optimal {
		return nil, nil
	}
	points := make([]design.Point, len(pool))
	for i, ps := range pool {
		points[i] = mm.decode(ps.X)
	}
	return points, nil
}
