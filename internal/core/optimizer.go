package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"hiopt/internal/design"
	"hiopt/internal/fault"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// Status is the outcome class of an optimization run.
type Status int

const (
	// Optimal means a feasible configuration was found and proven
	// minimal-power under the α bound / exhaustion criterion.
	Optimal Status = iota
	// Infeasible means no configuration satisfies the constraints and the
	// reliability bound.
	Infeasible
	// StatusBudgetExceeded means the iteration or wall-clock budget ran
	// out before the search terminated; Best carries the best-so-far
	// incumbent (possibly nil) without an optimality proof.
	StatusBudgetExceeded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case StatusBudgetExceeded:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Candidate is one simulated design point with its measured metrics.
type Candidate struct {
	Point design.Point
	// AnalyticMW is the Eq. (9) estimate P̄ the MILP optimized.
	AnalyticMW float64
	// PDR and PowerMW are the simulated metrics (averaged over runs).
	PDR     float64
	PowerMW float64
	// NLTDays is the simulated network lifetime.
	NLTDays float64
	// Feasible reports PDR >= PDRMin − FeasTol; under robust screening it
	// additionally requires the scenario-family PDR statistic (worst case
	// or configured quantile) to clear the same bound.
	Feasible bool
	// WorstPDR is the lowest PDR across the robust scenario family. It
	// equals PDR when robust screening is off or when the candidate was
	// already nominally infeasible (the family is then not evaluated).
	// WorstScenario labels the minimizing scenario ("" when none).
	WorstPDR      float64
	WorstScenario string
}

// Iteration records one RunMILP → RunSim round for reporting.
type Iteration struct {
	// PBarStar is the MILP optimum P̄* of the round.
	PBarStar float64
	// Candidates are the pool members with simulation results.
	Candidates []Candidate
	// FeasibleCount is how many met the reliability bound.
	FeasibleCount int
}

// Outcome is the result of an Algorithm 1 run.
type Outcome struct {
	Status Status
	// Best is the selected configuration (nil when infeasible).
	Best *Candidate
	// Iterations traces the search.
	Iterations []Iteration
	// Evaluations counts distinct configurations simulated; Simulations
	// counts individual simulator runs (Evaluations × Runs, minus cache
	// hits).
	Evaluations int
	Simulations int
	// ScreenedOut counts candidates rejected by the two-stage screening
	// pass without a full-fidelity evaluation (0 unless TwoStage).
	ScreenedOut int
	// SimulatedSeconds totals the simulated time across all runs — the
	// fidelity-independent cost metric (a screening run contributes
	// Duration/5, a full evaluation Duration × Runs).
	SimulatedSeconds float64
	// MILPNodes and LPIterations aggregate solver effort. MILPWarmSolves
	// and MILPColdSolves split the LP solves into warm dual-simplex
	// re-starts vs cold tableau rebuilds (both zero under ColdMILP).
	MILPNodes      int
	LPIterations   int
	MILPWarmSolves int
	MILPColdSolves int
	// TerminatedByAlpha reports whether the α bound (line 5 of
	// Algorithm 1) stopped the search before MILP exhaustion.
	TerminatedByAlpha bool
}

// Options tune Algorithm 1.
type Options struct {
	// PoolLimit caps the MILP solution pool per iteration (0 =
	// unlimited, the paper's behaviour).
	PoolLimit int
	// ColdMILP disables the warm-started persistent MILP state and
	// solves every pool from scratch with the clone-based kernel. The
	// result is identical; this exists for A/B benchmarking and as an
	// escape hatch.
	ColdMILP bool
	// DisableAlphaBound turns off the line-5 early termination (used by
	// the ablation study; the algorithm then runs until MILP exhaustion).
	DisableAlphaBound bool
	// FeasTol relaxes the reliability check to PDR >= PDRMin − FeasTol,
	// reflecting the ±ε estimation error of finite simulations (the
	// paper sizes T_sim to keep the estimate within a tolerance ε of the
	// true probability; the default here is 0.1%, which at the paper's
	// T_sim = 600 s × 3 runs is several standard errors of the PDR
	// estimator).
	FeasTol float64
	// CutEpsilonMW is the strictness margin of the Update step's
	// P̄ > P̄* cut. It must sit well above the MILP integrality
	// tolerance (else near-integral LP points can cheat the cut) and
	// well below the smallest separation between distinct power classes
	// (~15 µW for the CC2650 Tx modes); the default is 0.1 µW.
	CutEpsilonMW float64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// TwoStage enables a cheap screening pass before the full-fidelity
	// evaluation of each candidate: a single run at Duration/5 first,
	// and only candidates within ScreenMargin of the reliability bound
	// (or above it) receive the full T_sim × Runs treatment. This
	// implements the paper's observation that T_sim only needs to bound
	// the PDR estimation error relative to the decision being made:
	// clearly infeasible candidates don't need tight estimates.
	TwoStage bool
	// ScreenMargin is the rejection band of the screening pass (default
	// 0.05 — roughly 3σ of the short run's PDR estimator).
	ScreenMargin float64
	// MaxIterations caps the RunMILP → RunSim rounds of one Run (0 =
	// unlimited). When the cap is hit the Outcome carries the best-so-far
	// incumbent with StatusBudgetExceeded.
	MaxIterations int
	// MaxWallClock caps the wall-clock duration of one Run (0 =
	// unlimited); checked at iteration granularity, same best-so-far
	// semantics as MaxIterations.
	MaxWallClock time.Duration
	// Robust configures worst-case screening against a fault-scenario
	// family.
	Robust RobustOptions
	// Progress, when non-nil, receives a line per iteration.
	Progress func(format string, args ...interface{})
}

// RobustOptions configure the robust evaluation mode: every nominally
// feasible pool candidate is re-evaluated under a fault-scenario family
// and must also clear the reliability bound on the family's worst case
// (or a configured quantile) to stay feasible — the scenario-based robust
// design of D'Andreagiovanni et al. applied to Algorithm 1's oracle.
type RobustOptions struct {
	// Enabled turns robust screening on.
	Enabled bool
	// KFailures selects the k-node-failure family: every k-subset of a
	// candidate's locations fails at FailFrac × Duration (default 1).
	KFailures int
	// FailFrac places the hard failures as a fraction of the horizon
	// (default 0.25).
	FailFrac float64
	// IncludeCoordinator also fails the star coordinator. Off by
	// default: the paper treats the hub as the node with larger energy
	// storage (and, here, higher integrity); failing it collapses every
	// star trivially.
	IncludeCoordinator bool
	// Quantile selects the PDR order statistic the bound is enforced on:
	// 0 (default) is the strict worst case; e.g. 0.25 tolerates the worst
	// quarter of scenarios falling below the bound.
	Quantile float64
	// Scenarios, when non-empty, overrides the generated family: the same
	// explicit scenarios screen every candidate (faults at locations a
	// candidate does not use are inert).
	Scenarios []*fault.Scenario
}

func (o Options) withDefaults() Options {
	if o.FeasTol == 0 {
		o.FeasTol = 0.001
	}
	if o.CutEpsilonMW == 0 {
		o.CutEpsilonMW = 1e-4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ScreenMargin == 0 {
		o.ScreenMargin = 0.05
	}
	if o.Robust.Enabled {
		if o.Robust.KFailures <= 0 {
			o.Robust.KFailures = 1
		}
		if o.Robust.FailFrac <= 0 {
			o.Robust.FailFrac = 0.25
		}
	}
	return o
}

// Optimizer runs Algorithm 1 over a design problem.
type Optimizer struct {
	Problem *design.Problem
	Options Options

	// cache holds full-fidelity simulation results by point key so a
	// configuration is never simulated twice within one optimizer's
	// lifetime (including across a ParetoFront sweep). screenCache holds
	// the cheap screening results separately — a point screened out at
	// one bound may need a full evaluation at a looser bound.
	// scenarioCache holds fault-scenario evaluations keyed by the
	// combined (point key, scenario key) hash, so the robust family is
	// simulated once per (candidate, scenario) even across bound sweeps.
	cache         map[uint32]*netsim.Result
	screenCache   map[uint32]*netsim.Result
	scenarioCache map[uint64]*netsim.Result
	mu            sync.Mutex

	// evalHook, when non-nil, runs before each candidate's evaluation
	// inside a simulateAll worker; tests use it to inject failures and
	// panics.
	evalHook func(design.Point)

	// evPool recycles netsim evaluators (DES kernel + result scratch)
	// across candidates and iterations, keeping the simulation hot path
	// allocation-free. Each worker goroutine checks one out for the
	// duration of a candidate's evaluation.
	evPool sync.Pool
}

// NewOptimizer builds an optimizer with the given options.
func NewOptimizer(pr *design.Problem, opts Options) *Optimizer {
	return &Optimizer{
		Problem:       pr,
		Options:       opts.withDefaults(),
		cache:         make(map[uint32]*netsim.Result),
		screenCache:   make(map[uint32]*netsim.Result),
		scenarioCache: make(map[uint64]*netsim.Result),
		evPool:        sync.Pool{New: func() any { return netsim.NewEvaluator() }},
	}
}

// screenSeedOffset keeps screening runs on random streams disjoint from
// the full evaluations'.
const screenSeedOffset = 7777

// screen runs (or recalls) the cheap screening simulation of a point.
func (o *Optimizer) screen(ev *netsim.Evaluator, p design.Point) (*netsim.Result, bool, error) {
	o.mu.Lock()
	if r, ok := o.screenCache[p.Key()]; ok {
		o.mu.Unlock()
		return r, true, nil
	}
	o.mu.Unlock()
	cfg := o.Problem.Config(p)
	cfg.Duration /= 5
	r, err := ev.RunAveraged(cfg, 1, o.Problem.Seed+screenSeedOffset)
	if err != nil {
		return nil, false, err
	}
	o.mu.Lock()
	o.screenCache[p.Key()] = r
	o.mu.Unlock()
	return r, false, nil
}

// alpha is the paper's α(S*, PDR_min) = P̄/P̄_lb correction, where P̄_lb
// is "the minimum power that a node must consume for the specified PDR
// bound". The analytic estimate P̄* assumes every packet is delivered;
// packet loss can reduce consumption, but not arbitrarily: a node's own
// transmissions happen regardless of delivery, while receptions (and, in
// a mesh, relay transmissions) scale at worst with the delivered fraction
// PDR_min. α therefore divides only the loss-sensitive share of the
// current best solution's power, keeping the line-5 termination bound
// conservative.
func (o *Optimizer) alpha(best design.Point) float64 {
	pdr := o.Problem.PDRMin
	if pdr <= 0 {
		return 1
	}
	if pdr > 1 {
		pdr = 1
	}
	pr := o.Problem
	tx := float64(pr.Radio.TxModes[best.TxMode].ConsumptionMW)
	rx := float64(pr.Radio.RxConsumptionMW)
	n := float64(best.N())
	scale := pr.RatePPS * pr.Tpkt()
	var lb float64
	if best.Routing == netsim.Star {
		// Own transmission always happens; the 2(N−1) receptions scale
		// with delivery.
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*2*(n-1)*rx)
	} else {
		// The origin transmission always happens; relay transmissions
		// and all receptions scale with delivery.
		nre := float64(design.NreTx(best.N(), pr.NHops))
		lb = float64(pr.BaselineMW) + scale*(tx+pdr*((nre-1)*tx+nre*(n-1)*rx))
	}
	pbar := pr.AnalyticPower(best)
	if lb <= 0 || pbar <= lb {
		return 1
	}
	return pbar / lb
}

// Run executes Algorithm 1 and returns the outcome.
func (o *Optimizer) Run() (*Outcome, error) {
	mm, err := buildMILP(o.Problem)
	if err != nil {
		return nil, err
	}
	work := mm.model.Compile()
	out := &Outcome{Status: Infeasible}
	// The MILP oracle keeps one warm solver state across iterations: the
	// pruning cuts appended by the Update step below are ingested into
	// its live tableau instead of forcing a from-scratch tree.
	var milpState *milp.State
	if !o.Options.ColdMILP {
		milpState = milp.NewState(work, milp.Options{})
	}
	pMin := math.Inf(1) // P̄_min: best simulated power of a feasible config
	progress := o.Options.Progress
	if progress == nil {
		progress = func(string, ...interface{}) {}
	}
	start := time.Now()

	for iter := 0; ; iter++ {
		if o.Options.MaxIterations > 0 && iter >= o.Options.MaxIterations {
			progress("iter %d: iteration budget exhausted", iter)
			out.Status = StatusBudgetExceeded
			break
		}
		if o.Options.MaxWallClock > 0 && time.Since(start) >= o.Options.MaxWallClock {
			progress("iter %d: wall-clock budget exhausted (%s)", iter, o.Options.MaxWallClock)
			out.Status = StatusBudgetExceeded
			break
		}
		var pool []milp.PoolSolution
		var agg *milp.Solution
		var err error
		if milpState != nil {
			pool, agg, err = milpState.SolvePool(o.Options.PoolLimit, 1e-6)
		} else {
			pool, agg, err = milp.SolvePool(work, milp.Options{}, o.Options.PoolLimit, 1e-6)
		}
		if err != nil {
			return nil, err
		}
		out.MILPNodes += agg.Nodes
		out.LPIterations += agg.LPIterations
		out.MILPWarmSolves += agg.WarmSolves
		out.MILPColdSolves += agg.ColdSolves

		if agg.Status != milp.Optimal || len(pool) == 0 {
			// Line 4/5: no further candidates. Either infeasible overall
			// or the incumbent is the proven optimum.
			progress("iter %d: MILP exhausted (%s)", iter, agg.Status)
			break
		}
		pStar := agg.Objective
		if !o.Options.DisableAlphaBound && out.Best != nil && pStar/o.alpha(out.Best.Point) > pMin {
			// Line 5: even after the α correction, every remaining
			// candidate must simulate above the incumbent.
			progress("iter %d: α-bound termination (P̄*=%.4g, P̄min=%.4g)", iter, pStar, pMin)
			out.TerminatedByAlpha = true
			break
		}

		// Decode and defensively verify the pool.
		points := make([]design.Point, len(pool))
		for i, ps := range pool {
			if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
				return nil, fmt.Errorf("core: MILP returned infeasible pool member: %v", err)
			}
			if err := mm.checkExactness(o.Problem, ps.X); err != nil {
				return nil, err
			}
			points[i] = mm.decode(ps.X)
		}

		// Line 7: RunSim over the candidate set (parallel, cached).
		evals, stats, err := o.simulateAll(points)
		if err != nil {
			return nil, err
		}
		out.Evaluations += len(points)
		out.Simulations += stats.runs
		out.ScreenedOut += stats.screenedOut
		out.SimulatedSeconds += stats.seconds

		it := Iteration{PBarStar: pStar}
		for i, p := range points {
			e := evals[i]
			cand := Candidate{
				Point:         p,
				AnalyticMW:    o.Problem.AnalyticPower(p),
				PDR:           e.res.PDR,
				PowerMW:       float64(e.res.MaxPower),
				NLTDays:       e.res.NLTDays,
				WorstPDR:      e.res.PDR,
				WorstScenario: e.worstScenario,
			}
			cand.Feasible = cand.PDR >= o.Problem.PDRMin-o.Options.FeasTol
			if e.robust {
				cand.WorstPDR = e.worstPDR
				cand.Feasible = cand.Feasible && e.screenPDR >= o.Problem.PDRMin-o.Options.FeasTol
			}
			it.Candidates = append(it.Candidates, cand)
			if cand.Feasible {
				it.FeasibleCount++
			}
		}
		// Line 8/9/10: Sort feasible candidates by simulated power and
		// update the incumbent.
		sort.SliceStable(it.Candidates, func(a, b int) bool {
			return it.Candidates[a].PowerMW < it.Candidates[b].PowerMW
		})
		for i := range it.Candidates {
			c := it.Candidates[i]
			if c.Feasible && c.PowerMW < pMin {
				pMin = c.PowerMW
				best := c
				out.Best = &best
				out.Status = Optimal
			}
		}
		out.Iterations = append(out.Iterations, it)
		progress("iter %d: P̄*=%.4g mW, pool=%d, feasible=%d, P̄min=%.4g",
			iter, pStar, len(pool), it.FeasibleCount, pMin)

		// Line 11: Update(P̃, P̄ > P̄*) — prune the explored power class.
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, pStar+o.Options.CutEpsilonMW)
	}
	return out, nil
}

// simStats aggregates the cost of one simulateAll batch.
type simStats struct {
	// runs counts fresh simulator runs (screen runs included).
	runs int
	// screenedOut counts candidates the screening pass rejected.
	screenedOut int
	// seconds totals fresh simulated time.
	seconds float64
}

// pointEval is one candidate's evaluation outcome: the nominal result
// plus, when robust screening ran, the scenario-family PDR statistics.
type pointEval struct {
	res *netsim.Result
	// robust reports whether the scenario family was evaluated (it is
	// skipped for nominally infeasible candidates — they are rejected
	// either way).
	robust bool
	// screenPDR is the statistic the bound is enforced on (the
	// Quantile-selected order statistic; equals worstPDR at quantile 0).
	// worstPDR is the strict minimum and worstScenario its label.
	screenPDR     float64
	worstPDR      float64
	worstScenario string
}

// simulateAll evaluates a candidate set concurrently, consulting the
// cross-iteration caches, the optional two-stage screening pass, and the
// optional robust scenario family. It returns per-point evaluations and
// the batch's fresh-simulation cost. Worker panics are recovered into
// errors, every in-flight worker is drained before returning, and all
// failures are reported via errors.Join.
func (o *Optimizer) simulateAll(points []design.Point) ([]pointEval, simStats, error) {
	evals := make([]pointEval, len(points))
	// jobs maps each distinct key to the point indices wanting it, so
	// within-batch duplicates are evaluated once. Points with a cached
	// nominal result still pass through a worker when robust screening is
	// on — their scenario family resolves from the scenario cache, and
	// the feasibility statistic must be recomputed per call (the bound
	// may have changed across a ParetoFront sweep).
	jobs := make(map[uint32][]int)
	o.mu.Lock()
	for i, p := range points {
		if r, ok := o.cache[p.Key()]; ok && !o.Options.Robust.Enabled {
			evals[i] = pointEval{res: r}
		} else {
			jobs[p.Key()] = append(jobs[p.Key()], i)
		}
	}
	o.mu.Unlock()

	var stats simStats
	var statsMu sync.Mutex
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var errs []error
	addErr := func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
	}
	hasErr := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return len(errs) > 0
	}
	sem := make(chan struct{}, o.Options.Workers)
	fullRuns := max(1, o.Problem.Runs)
	for _, idxs := range jobs {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if hasErr() {
				// A sibling already failed; the batch is doomed, so skip
				// the remaining work and let Run surface the error.
				return
			}
			p := points[idxs[0]]
			ev := o.evPool.Get().(*netsim.Evaluator)
			defer func() {
				if r := recover(); r != nil {
					// One bad candidate becomes an error, not a hung
					// WaitGroup. The evaluator may be mid-run; drop it
					// rather than returning it to the pool.
					addErr(fmt.Errorf("core: evaluation of %s panicked: %v", p, r))
					return
				}
				o.evPool.Put(ev)
			}()
			if o.evalHook != nil {
				o.evalHook(p)
			}
			if o.Options.TwoStage {
				o.mu.Lock()
				_, full := o.cache[p.Key()]
				o.mu.Unlock()
				if !full {
					sr, cached, err := o.screen(ev, p)
					if err != nil {
						addErr(err)
						return
					}
					statsMu.Lock()
					if !cached {
						stats.runs++
						stats.seconds += o.Problem.Duration / 5
					}
					statsMu.Unlock()
					if sr.PDR < o.Problem.PDRMin-o.Options.ScreenMargin {
						// Clearly infeasible: the cheap estimate is final.
						statsMu.Lock()
						stats.screenedOut++
						statsMu.Unlock()
						for _, i := range idxs {
							evals[i] = pointEval{res: sr}
						}
						return
					}
				}
			}
			o.mu.Lock()
			r := o.cache[p.Key()]
			o.mu.Unlock()
			if r == nil {
				rr, err := o.Problem.EvaluateWith(ev, p)
				if err != nil {
					addErr(err)
					return
				}
				o.mu.Lock()
				o.cache[p.Key()] = rr
				o.mu.Unlock()
				statsMu.Lock()
				stats.runs += fullRuns
				stats.seconds += o.Problem.Duration * float64(fullRuns)
				statsMu.Unlock()
				r = rr
			}
			pe := pointEval{res: r}
			if o.Options.Robust.Enabled && r.PDR >= o.Problem.PDRMin-o.Options.FeasTol {
				// Only nominally feasible candidates face the adversary:
				// the others are rejected either way, and the family
				// costs |scenarios| full-fidelity evaluations each.
				re, fresh, err := o.robustEval(ev, p)
				if err != nil {
					addErr(err)
					return
				}
				statsMu.Lock()
				stats.runs += fresh * fullRuns
				stats.seconds += o.Problem.Duration * float64(fresh*fullRuns)
				statsMu.Unlock()
				pe.robust = true
				pe.screenPDR = re.screenPDR
				pe.worstPDR = re.worstPDR
				pe.worstScenario = re.worstScenario
			}
			for _, i := range idxs {
				evals[i] = pe
			}
		}(idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Deterministic order regardless of goroutine scheduling.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, stats, errors.Join(errs...)
	}
	return evals, stats, nil
}

// robustStats is the scenario-family PDR summary of one candidate.
type robustStats struct {
	screenPDR     float64
	worstPDR      float64
	worstScenario string
}

// robustEval evaluates a candidate under its fault-scenario family,
// consulting and filling the (point, scenario) cache. It returns the
// family statistics and the number of fresh full-fidelity evaluations.
func (o *Optimizer) robustEval(ev *netsim.Evaluator, p design.Point) (robustStats, int, error) {
	scenarios := o.scenariosFor(p)
	rs := robustStats{screenPDR: math.Inf(1), worstPDR: math.Inf(1)}
	if len(scenarios) == 0 {
		o.mu.Lock()
		nominal := o.cache[p.Key()]
		o.mu.Unlock()
		rs.screenPDR = nominal.PDR
		rs.worstPDR = nominal.PDR
		return rs, 0, nil
	}
	fresh := 0
	pdrs := make([]float64, 0, len(scenarios))
	for _, sc := range scenarios {
		key := fault.CombineKeys(uint64(p.Key()), sc.Key())
		o.mu.Lock()
		r := o.scenarioCache[key]
		o.mu.Unlock()
		if r == nil {
			cfg := o.Problem.Config(p)
			cfg.Scenario = sc
			var err error
			r, err = ev.RunAveraged(cfg, o.Problem.Runs, o.Problem.Seed)
			if err != nil {
				return rs, fresh, err
			}
			o.mu.Lock()
			o.scenarioCache[key] = r
			o.mu.Unlock()
			fresh++
		}
		pdrs = append(pdrs, r.PDR)
		if r.PDR < rs.worstPDR {
			rs.worstPDR = r.PDR
			rs.worstScenario = sc.Label()
		}
	}
	sort.Float64s(pdrs)
	idx := int(math.Floor(o.Options.Robust.Quantile * float64(len(pdrs))))
	if idx >= len(pdrs) {
		idx = len(pdrs) - 1
	}
	if idx < 0 {
		idx = 0
	}
	rs.screenPDR = pdrs[idx]
	return rs, fresh, nil
}

// scenariosFor returns the fault-scenario family a candidate is screened
// against: the explicit override when configured, otherwise the
// k-node-failure family over the candidate's own locations (coordinator
// excluded for stars unless IncludeCoordinator).
func (o *Optimizer) scenariosFor(p design.Point) []*fault.Scenario {
	ro := o.Options.Robust
	if len(ro.Scenarios) > 0 {
		return ro.Scenarios
	}
	exclude := -1
	if p.Routing == netsim.Star && !ro.IncludeCoordinator {
		exclude = o.Problem.Config(p).CoordinatorLoc
	}
	g := fault.ScenarioGen{Seed: o.Problem.Seed, FailFrac: ro.FailFrac}
	return g.KNodeFailures(p.Locations(), exclude, ro.KFailures, o.Problem.Duration)
}

// ParetoPoint is one point of the reliability–lifetime trade-off front.
type ParetoPoint struct {
	// PDRMin is the reliability bound this point was optimized for.
	PDRMin float64
	// Best is the optimal configuration (nil when the bound is
	// infeasible).
	Best *Candidate
	// Outcome carries the full search record.
	Outcome *Outcome
}

// ParetoFront runs Algorithm 1 across a sweep of reliability bounds and
// returns the resulting lifetime-versus-reliability trade-off curve (the
// arrows of the paper's Fig. 3). All runs share one simulation cache —
// a configuration's simulated metrics do not depend on PDRMin — so the
// sweep costs far less than independent optimizations.
//
// The problem's PDRMin field is overwritten during the sweep and left at
// the last bound.
func ParetoFront(pr *design.Problem, bounds []float64, opts Options) ([]ParetoPoint, error) {
	if len(bounds) == 0 {
		bounds = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	}
	o := NewOptimizer(pr, opts)
	var front []ParetoPoint
	for _, b := range bounds {
		pr.PDRMin = b
		out, err := o.Run()
		if err != nil {
			return nil, err
		}
		front = append(front, ParetoPoint{PDRMin: b, Best: out.Best, Outcome: out})
	}
	return front, nil
}

// WriteRelaxationLP renders the MILP relaxation P̃ of a problem in CPLEX
// LP file format, for cross-checking against external solvers.
func WriteRelaxationLP(pr *design.Problem, w io.Writer) error {
	mm, err := buildMILP(pr)
	if err != nil {
		return err
	}
	return mm.model.Compile().WriteLP(w)
}

// CompileMILP lowers a problem to its compiled MILP relaxation P̃ and
// returns it with the Eq. (9) objective expression — the pair needed to
// drive the raw Algorithm 1 oracle loop (SolvePool, then prune with
// AddExprRow(objective ≥ P̄* + ε)) outside the optimizer, e.g. from the
// MILP benchmarks.
func CompileMILP(pr *design.Problem) (*linexpr.Compiled, linexpr.Expr, error) {
	mm, err := buildMILP(pr)
	if err != nil {
		return nil, linexpr.Expr{}, err
	}
	return mm.model.Compile(), mm.objective, nil
}

// FirstPool returns the decoded MILP solution pool of Algorithm 1's first
// iteration — the cheapest power class of the relaxed problem P̃ — without
// running any simulations. It is useful for inspecting what the candidate
// generator proposes and for benchmarking the MILP oracle in isolation.
func FirstPool(pr *design.Problem) ([]design.Point, error) {
	mm, err := buildMILP(pr)
	if err != nil {
		return nil, err
	}
	pool, agg, err := milp.NewState(mm.model.Compile(), milp.Options{}).SolvePool(0, 1e-6)
	if err != nil {
		return nil, err
	}
	if agg.Status != milp.Optimal {
		return nil, nil
	}
	points := make([]design.Point, len(pool))
	for i, ps := range pool {
		points[i] = mm.decode(ps.X)
	}
	return points, nil
}
