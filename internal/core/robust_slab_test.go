package core

import (
	"math"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
)

// TestGammaOneSecondClassSlab pins the Γ = 1 relaxation's known-cost
// regression: after pruning the first power class, the second class is a
// highly degenerate 132-member slab (every protected star pinned to tx2,
// so huge objective ties). Warm single-tree pool enumeration must detect
// the distress (stale-twice guard) and fall back to the legacy
// clone-based enumeration — observable as an aggregate with NO
// warm-state solves at all (WarmSolves == 0 && ColdSolves == 0: the
// clone path solves on throwaway solvers that never report into the
// persistent state's stats, where the first, warm-enumerated class
// records hundreds) — and the fallback must still deliver the complete,
// feasible 132-member slab. If the member counts, objectives, or the
// fallback signature move, the DESIGN.md §13 "Known cost" contract has
// changed and the pinned hisweep -gamma / hibench -exp gm outputs need
// re-auditing.
func TestGammaOneSecondClassSlab(t *testing.T) {
	if testing.Short() {
		t.Skip("the legacy clone enumeration of the 132-member slab takes ~50 s")
	}
	pr := design.PaperProblem(0.9)
	mm, _, err := buildRobustMILP(pr, RobustCompile{Gamma: 1, PDRFloor: 0.83})
	if err != nil {
		t.Fatal(err)
	}
	work := mm.model.Compile()
	st := milp.NewState(work, milp.Options{})
	if st.Legacy() {
		t.Fatal("Γ=1 paper problem fell back to legacy at compile time")
	}

	pool1, agg1, err := st.SolvePool(0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if agg1.Status != milp.Optimal {
		t.Fatalf("first class: status %v", agg1.Status)
	}
	t.Logf("first class: %d members, obj %.10g, warm=%d cold=%d",
		len(pool1), agg1.Objective, agg1.WarmSolves, agg1.ColdSolves)
	if len(pool1) != 72 {
		t.Errorf("first class pool size %d, pinned 72", len(pool1))
	}
	if math.Abs(agg1.Objective-1.34921875) > 1e-9 {
		t.Errorf("first class obj %.10g, pinned 1.34921875", agg1.Objective)
	}
	if agg1.WarmSolves == 0 {
		t.Error("first class recorded no warm solves: it must enumerate on the warm kernel")
	}

	work.AddExprRow("prune_0", mm.objective, linexpr.GE, agg1.Objective+1e-4)
	pool2, agg2, err := st.SolvePool(0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if agg2.Status != milp.Optimal {
		t.Fatalf("second class: status %v", agg2.Status)
	}
	t.Logf("second class: %d members, obj %.10g, warm=%d cold=%d",
		len(pool2), agg2.Objective, agg2.WarmSolves, agg2.ColdSolves)
	if len(pool2) != 132 {
		t.Errorf("second class pool size %d, pinned 132", len(pool2))
	}
	if math.Abs(agg2.Objective-1.62578125) > 1e-9 {
		t.Errorf("second class obj %.10g, pinned 1.62578125", agg2.Objective)
	}
	if agg2.WarmSolves != 0 || agg2.ColdSolves != 0 {
		t.Errorf("second class solved warm=%d cold=%d: the degenerate slab must "+
			"trip the legacy clone-enumeration fallback, whose throwaway solvers "+
			"record no warm-state stats (warm==0, cold==0)",
			agg2.WarmSolves, agg2.ColdSolves)
	}
	for i, ps := range pool2 {
		if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
			t.Fatalf("second class member %d: %v", i, err)
		}
	}
}
