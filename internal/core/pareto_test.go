package core

import (
	"math"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/engine"
	"hiopt/internal/milp"
)

// paretoPoolSet enumerates the first pool of a cold pareto compilation at
// floor eps and returns it as a point set.
func paretoPoolSet(t *testing.T, pr *design.Problem, rc RobustCompile, eps float64) (map[uint32]design.Point, *milp.Solution) {
	t.Helper()
	mm, _, err := buildParetoMILP(pr, rc, eps)
	if err != nil {
		t.Fatal(err)
	}
	pool, agg, err := milp.NewState(mm.model.Compile(), milp.Options{}).SolvePool(0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	set := map[uint32]design.Point{}
	for _, ps := range pool {
		set[mm.decode(ps.X).Key()] = mm.decode(ps.X)
	}
	return set, agg
}

// TestParetoFloorNominalVacuous: in the nominal compilation (Γ = 0) the
// floor row's ceilings are all 1, so for any ε <= 1 the pool equals the
// plain nominal pool — the row rides in the basis without pruning.
func TestParetoFloorNominalVacuous(t *testing.T) {
	pr := design.PaperProblem(0.9)
	mm, err := buildMILP(pr)
	if err != nil {
		t.Fatal(err)
	}
	pool, agg, err := milp.NewState(mm.model.Compile(), milp.Options{}).SolvePool(0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	nominal := map[uint32]bool{}
	for _, ps := range pool {
		nominal[mm.decode(ps.X).Key()] = true
	}
	for _, eps := range []float64{0.5, 0.9, 1.0} {
		set, pagg := paretoPoolSet(t, pr, RobustCompile{}, eps)
		if pagg.Status != agg.Status || len(set) != len(nominal) {
			t.Fatalf("ε=%g: pool %d (%v), nominal %d (%v)", eps, len(set), pagg.Status, len(nominal), agg.Status)
		}
		for k := range set {
			if !nominal[k] {
				t.Fatalf("ε=%g: member %v not in the nominal pool", eps, set[k])
			}
		}
	}
}

// TestParetoFloorPrunesNodeCounts: under Γ = 1 protection with the
// default FailFrac = 0.25, the floor row's ceilings are (n − 0.75)/n, so
// ε = 0.83 demands n >= 0.75/0.17 ⇒ n >= 5 — 4-node classes must vanish
// from the pool, matching what the robust availability row does at a
// frozen 0.83 floor, but reachable by a pure RHS move.
func TestParetoFloorPrunesNodeCounts(t *testing.T) {
	pr := design.PaperProblem(0.9)
	rc := RobustCompile{Gamma: 1, PDRFloor: 0.6}
	loose, _ := paretoPoolSet(t, pr, rc, 0.6)
	any4 := false
	for _, p := range loose {
		if p.N() == 4 {
			any4 = true
		}
	}
	if !any4 {
		t.Fatal("loose floor should admit 4-node designs (test premise)")
	}
	tight, agg := paretoPoolSet(t, pr, rc, 0.83)
	if agg.Status != milp.Optimal || len(tight) == 0 {
		t.Fatalf("tight floor: status %v, pool %d", agg.Status, len(tight))
	}
	for _, p := range tight {
		if p.N() < 5 {
			t.Errorf("ε=0.83 pool member %v has %d nodes, floor demands >= 5", p, p.N())
		}
	}
}

// TestParetoRetargetWarmMatchesCold: sweeping the floor on a live warm
// state via Retarget must enumerate exactly the pools a cold recompile at
// each ε produces, across an up-down sweep — the correctness contract
// behind the pareto_warm_front benchmark and hisweep -pareto.
func TestParetoRetargetWarmMatchesCold(t *testing.T) {
	pr := design.PaperProblem(0.9)
	rc := RobustCompile{Gamma: 1, PDRFloor: 0.6}
	mm, h, err := buildParetoMILP(pr, rc, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	st := milp.NewState(mm.model.Compile(), milp.Options{})
	for _, eps := range []float64{0.6, 0.8, 0.83, 0.86, 0.8, 0.6} {
		h.Retarget(st, eps)
		pool, agg, err := st.SolvePool(0, 1e-6)
		if err != nil {
			t.Fatalf("warm ε=%g: %v", eps, err)
		}
		warm := map[uint32]bool{}
		for _, ps := range pool {
			warm[mm.decode(ps.X).Key()] = true
		}
		cold, coldAgg := paretoPoolSet(t, pr, rc, eps)
		if agg.Status != coldAgg.Status {
			t.Fatalf("ε=%g: status %v warm vs %v cold", eps, agg.Status, coldAgg.Status)
		}
		if agg.Status == milp.Optimal && math.Abs(agg.Objective-coldAgg.Objective) > 1e-9 {
			t.Fatalf("ε=%g: objective %g warm vs %g cold", eps, agg.Objective, coldAgg.Objective)
		}
		if len(warm) != len(cold) {
			t.Fatalf("ε=%g: pool %d warm vs %d cold", eps, len(warm), len(cold))
		}
		for k := range cold {
			if !warm[k] {
				t.Fatalf("ε=%g: cold pool member %v missing from warm pool", eps, cold[k])
			}
		}
	}
}

// TestParetoSweepWarmMatchesCold is the acceptance property of the
// ε-constraint driver: the warm record-replay sweep must select exactly
// the per-bound optima that independent cold Algorithm 1 runs select,
// while spending at least 5× fewer simplex pivots and answering a
// majority of candidate scorings from recorded evaluations. The cold
// pass shares the warm pass's engine, which doubles as the cache-sharing
// check: it must re-simulate nothing.
func TestParetoSweepWarmMatchesCold(t *testing.T) {
	bounds := []float64{0.5, 0.56, 0.62, 0.68, 0.74, 0.8, 0.86, 0.92}
	eng, err := engine.New(0)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := ParetoSweep(fastProblem(0.5), SweepOptions{
		Bounds:  bounds,
		Options: Options{Engine: eng},
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ParetoSweep(fastProblem(0.5), SweepOptions{
		Bounds:  bounds,
		Cold:    true,
		Options: Options{Engine: eng},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(warm.Points) != len(bounds) || len(cold.Points) != len(bounds) {
		t.Fatalf("points: %d warm, %d cold, want %d", len(warm.Points), len(cold.Points), len(bounds))
	}
	for i := range warm.Points {
		w, c := warm.Points[i], cold.Points[i]
		if w.PDRMin != c.PDRMin {
			t.Fatalf("point %d: bound %g warm vs %g cold", i, w.PDRMin, c.PDRMin)
		}
		switch {
		case w.Best == nil && c.Best == nil:
		case w.Best == nil || c.Best == nil:
			t.Fatalf("bound %g: best %v warm vs %v cold", w.PDRMin, w.Best, c.Best)
		case w.Best.Point != c.Best.Point:
			t.Fatalf("bound %g: best %v warm vs %v cold", w.PDRMin, w.Best.Point, c.Best.Point)
		case w.Best.PowerMW != c.Best.PowerMW || w.Best.PDR != c.Best.PDR ||
			w.Best.NLTDays != c.Best.NLTDays || w.Best.P95Latency != c.Best.P95Latency:
			t.Fatalf("bound %g: metrics differ warm vs cold: %+v vs %+v", w.PDRMin, *w.Best, *c.Best)
		case w.Dominated != c.Dominated:
			t.Fatalf("bound %g: dominance %v warm vs %v cold", w.PDRMin, w.Dominated, c.Dominated)
		}
	}
	if len(warm.Front()) == 0 {
		t.Fatal("empty front")
	}

	if warm.LPIterations <= 0 || cold.LPIterations <= 0 {
		t.Fatalf("pivot counters empty: %d warm, %d cold", warm.LPIterations, cold.LPIterations)
	}
	ratio := float64(cold.LPIterations) / float64(warm.LPIterations)
	if ratio < 5 {
		t.Errorf("pivot ratio cold/warm = %.1f (%d/%d), want >= 5",
			ratio, cold.LPIterations, warm.LPIterations)
	}
	if f := warm.FreshEvalFrac(); f >= 0.5 {
		t.Errorf("warm fresh-eval fraction = %.2f (%d/%d), want a minority",
			f, warm.Evaluations, warm.CandidateUses)
	}
	// Cache sharing: the cold pass ran every bound against the warm
	// pass's engine and must not have simulated anything fresh.
	if cold.Engine.Simulated != 0 {
		t.Errorf("cold pass re-simulated %d evaluations despite the shared engine", cold.Engine.Simulated)
	}
}

// TestParetoSweepLatencyBound: an absurdly tight latency ε makes every
// bound infeasible; a loose one changes nothing.
func TestParetoSweepLatencyBound(t *testing.T) {
	pr := fastProblem(0.5)
	pr.Duration = 5
	// One bound is enough for the infeasible direction: with no feasible
	// incumbent the α bound never fires and the sweep pays for full MILP
	// exhaustion, so keep this branch as small as possible.
	res, err := ParetoSweep(pr, SweepOptions{Bounds: []float64{0.5}, LatencyMax: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Best != nil {
			t.Errorf("bound %g: expected infeasible under 1 ns latency cap, got %v", p.PDRMin, p.Best.Point)
		}
		if !p.Dominated {
			t.Errorf("bound %g: infeasible point must be dominated", p.PDRMin)
		}
	}
	pr2 := fastProblem(0.5)
	pr2.Duration = 5
	loose, err := ParetoSweep(pr2, SweepOptions{Bounds: []float64{0.5, 0.7}, LatencyMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range loose.Points {
		if p.Best == nil {
			t.Errorf("bound %g: expected feasible under a 10 s latency cap", p.PDRMin)
			continue
		}
		if p.Best.P95Latency <= 0 || p.Best.MeanLatency <= 0 {
			t.Errorf("bound %g: latency metrics not populated: %+v", p.PDRMin, *p.Best)
		}
	}
}

// TestParetoSweepRejectsTwoStage: the screening threshold would move
// with the swept bound, so the driver refuses the combination.
func TestParetoSweepRejectsTwoStage(t *testing.T) {
	_, err := ParetoSweep(fastProblem(0.5), SweepOptions{
		Bounds:  []float64{0.5, 0.7},
		Options: Options{TwoStage: true},
	})
	if err == nil {
		t.Fatal("expected an error for TwoStage + ParetoSweep")
	}
}

// TestMarkDominated pins the dominance filter on a hand-built sweep.
func TestMarkDominated(t *testing.T) {
	mk := func(pdr, nlt, lat float64, topo uint16) *Candidate {
		return &Candidate{Point: design.Point{Topology: topo}, PDR: pdr, NLTDays: nlt, P95Latency: lat}
	}
	points := []SweepPoint{
		{PDRMin: 0.5, Best: mk(0.90, 10, 0.010, 0x0b)}, // dominated: 0.7's point is better on PDR and latency, equal NLT
		{PDRMin: 0.6, Best: nil},                       // infeasible
		{PDRMin: 0.7, Best: mk(0.95, 10, 0.009, 0x2b)},
		{PDRMin: 0.8, Best: mk(0.97, 8, 0.012, 0x3b)}, // trades NLT for PDR: non-dominated
		{PDRMin: 0.9, Best: mk(0.97, 8, 0.012, 0x3b)}, // same design as 0.8: the lower bound's copy is subsumed
	}
	markDominated(points)
	want := []bool{true, true, false, true, false}
	for i, p := range points {
		if p.Dominated != want[i] {
			t.Errorf("point %d (bound %g): dominated = %v, want %v", i, p.PDRMin, p.Dominated, want[i])
		}
	}
}
