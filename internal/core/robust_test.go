package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"hiopt/internal/body"
	"hiopt/internal/design"
	"hiopt/internal/fault"
	"hiopt/internal/netsim"
)

// blackoutScenario shadows every location pair from t=1 on: senders keep
// generating but nothing is delivered, so no candidate can survive it and
// robust screening must reject the whole design space. (Failing the nodes
// instead would not work: a dead node stops sending too, and the Eq. (6)
// PDR is a ratio over sent packets.)
func blackoutScenario() *fault.Scenario {
	sc := &fault.Scenario{Name: "blackout"}
	for a := 0; a < body.NumLocations; a++ {
		for b := a + 1; b < body.NumLocations; b++ {
			sc.Links = append(sc.Links, fault.LinkOutage{LocA: a, LocB: b, Start: 1, End: 1e6})
		}
	}
	return sc
}

// TestEvalHookPanicBecomesError: a panicking evaluation must terminate
// Run with an error mentioning the panic — not hang the worker pool or
// crash the process.
func TestEvalHookPanicBecomesError(t *testing.T) {
	pr := fastProblem(0.9)
	o := NewOptimizer(pr, Options{})
	o.evalHook = func(p design.Point) { panic("injected failure") }
	done := make(chan struct{})
	var err error
	go func() {
		_, err = o.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Run hung after a worker panic")
	}
	if err == nil {
		t.Fatal("Run succeeded despite panicking evaluations")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("error does not describe the panic: %v", err)
	}
}

// TestEvalHookSinglePanicIsDeterministic: when one specific candidate
// panics, the reported error must name it identically across runs.
func TestEvalHookSinglePanicIsDeterministic(t *testing.T) {
	pr := fastProblem(0.9)
	points, err := FirstPool(pr)
	if err != nil {
		t.Fatal(err)
	}
	victim := points[0]
	msg := func() string {
		o := NewOptimizer(fastProblem(0.9), Options{})
		o.evalHook = func(p design.Point) {
			if p == victim {
				panic("boom")
			}
		}
		_, err := o.Run()
		if err == nil {
			t.Fatal("Run succeeded despite the panicking candidate")
		}
		return err.Error()
	}
	if a, b := msg(), msg(); a != b {
		t.Fatalf("error message depends on scheduling:\n a: %s\n b: %s", a, b)
	}
}

// TestMaxIterationsBudget: a one-iteration cap must stop the search with
// StatusBudgetExceeded after exactly one RunMILP → RunSim round.
func TestMaxIterationsBudget(t *testing.T) {
	out, err := NewOptimizer(fastProblem(0.9), Options{MaxIterations: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusBudgetExceeded {
		t.Fatalf("status = %v, want %v", out.Status, StatusBudgetExceeded)
	}
	if len(out.Iterations) != 1 {
		t.Fatalf("ran %d iterations under a 1-iteration budget", len(out.Iterations))
	}
}

// TestMaxWallClockBudget: an already-expired wall-clock budget must
// return immediately with no iterations and no incumbent.
func TestMaxWallClockBudget(t *testing.T) {
	out, err := NewOptimizer(fastProblem(0.9), Options{MaxWallClock: time.Nanosecond}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusBudgetExceeded {
		t.Fatalf("status = %v, want %v", out.Status, StatusBudgetExceeded)
	}
	if len(out.Iterations) != 0 || out.Best != nil {
		t.Fatalf("expired budget still ran work: %d iterations, best %v", len(out.Iterations), out.Best)
	}
}

func TestBudgetStatusString(t *testing.T) {
	if got := StatusBudgetExceeded.String(); got != "budget-exceeded" {
		t.Fatalf("StatusBudgetExceeded.String() = %q", got)
	}
}

// TestRobustScreeningRejectsNominalOptimum: under an unsurvivable
// explicit scenario the robust search must reject every candidate the
// nominal search accepts, and every nominally feasible candidate must be
// marked robust-infeasible with its WorstPDR below the bound. The robust
// run is capped at a few iterations — with nothing feasible it would
// otherwise exhaust the whole design space.
func TestRobustScreeningRejectsNominalOptimum(t *testing.T) {
	pdrMin := 0.6
	nom, err := NewOptimizer(fastProblem(pdrMin), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if nom.Best == nil {
		t.Fatalf("nominal search found no optimum at PDRmin=%v", pdrMin)
	}
	rob, err := NewOptimizer(fastProblem(pdrMin), Options{
		MaxIterations: 3,
		Robust:        RobustOptions{Enabled: true, Scenarios: []*fault.Scenario{blackoutScenario()}},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rob.Best != nil || rob.Status == Optimal {
		t.Fatalf("blackout scenario left a feasible design: status %v, best %+v", rob.Status, rob.Best)
	}
	sawScreened := false
	for _, it := range rob.Iterations {
		for _, c := range it.Candidates {
			if c.PDR >= pdrMin-0.001 {
				sawScreened = true
				if c.Feasible {
					t.Fatalf("candidate %v feasible despite blackout worst case (WorstPDR %v)", c.Point, c.WorstPDR)
				}
				if c.WorstPDR >= c.PDR {
					t.Fatalf("candidate %v: WorstPDR %v not below nominal %v", c.Point, c.WorstPDR, c.PDR)
				}
				if c.WorstScenario != "blackout" {
					t.Fatalf("candidate %v: WorstScenario %q, want blackout", c.Point, c.WorstScenario)
				}
			}
		}
	}
	if !sawScreened {
		t.Fatal("no nominally feasible candidate passed through robust screening")
	}
}

// TestRobustOptimumNoCheaperThanNominal: robust feasibility is a subset
// of nominal feasibility, so the robust optimum can never draw less
// power than the nominal one.
func TestRobustOptimumNoCheaperThanNominal(t *testing.T) {
	pdrMin := 0.5
	nom, err := NewOptimizer(fastProblem(pdrMin), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	rob, err := NewOptimizer(fastProblem(pdrMin), Options{
		Robust: RobustOptions{Enabled: true, KFailures: 1},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if nom.Best == nil {
		t.Fatalf("nominal search found no optimum at PDRmin=%v", pdrMin)
	}
	if rob.Best != nil {
		if rob.Best.PowerMW < nom.Best.PowerMW {
			t.Fatalf("robust optimum (%v mW) cheaper than nominal (%v mW)",
				rob.Best.PowerMW, nom.Best.PowerMW)
		}
		if rob.Best.WorstPDR >= rob.Best.PDR+1e-9 {
			t.Fatalf("robust best: WorstPDR %v above nominal PDR %v", rob.Best.WorstPDR, rob.Best.PDR)
		}
		if rob.Best.WorstPDR < pdrMin-0.001 {
			t.Fatalf("robust best violates the bound in the worst case: %v", rob.Best.WorstPDR)
		}
	}
}

// TestScenariosForFamily: the generated family covers each non-excluded
// location once at k=1, excluding the star coordinator by default and
// including it on request.
func TestScenariosForFamily(t *testing.T) {
	pr := fastProblem(0.9)
	o := NewOptimizer(pr, Options{Robust: RobustOptions{Enabled: true}})
	points, err := FirstPool(pr)
	if err != nil {
		t.Fatal(err)
	}
	var star *design.Point
	for i := range points {
		if points[i].Routing == netsim.Star {
			star = &points[i]
			break
		}
	}
	if star == nil {
		t.Skip("first pool has no star candidate")
	}
	fam := o.scenariosFor(*star)
	coord := pr.Config(*star).CoordinatorLoc
	if len(fam) != star.N()-1 {
		t.Fatalf("star k=1 family has %d scenarios, want N-1 = %d", len(fam), star.N()-1)
	}
	for _, sc := range fam {
		if sc.Failures[0].Location == coord {
			t.Fatal("coordinator appears in the default star family")
		}
	}
	o2 := NewOptimizer(pr, Options{Robust: RobustOptions{Enabled: true, IncludeCoordinator: true}})
	if fam2 := o2.scenariosFor(*star); len(fam2) != star.N() {
		t.Fatalf("IncludeCoordinator family has %d scenarios, want N = %d", len(fam2), star.N())
	}
}

// TestScenarioCacheAvoidsResimulation: a candidate's scenario family is
// simulated once; repeating the robust evaluation costs zero fresh runs
// even across a changed reliability bound.
func TestScenarioCacheAvoidsResimulation(t *testing.T) {
	// A low bound so the first-pool candidate is nominally feasible and
	// its scenario family is actually evaluated.
	pr := fastProblem(0.2)
	o := NewOptimizer(pr, Options{Robust: RobustOptions{Enabled: true}})
	points, err := FirstPool(pr)
	if err != nil {
		t.Fatal(err)
	}
	pts := points[:1]
	first, stats1, err := o.simulateAll(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if !first[0].robust {
		t.Fatalf("candidate %v was not robust-evaluated (PDR %v)", pts[0], first[0].res.PDR)
	}
	if stats1.runs <= max(1, o.Problem.Runs) {
		t.Fatalf("first robust evaluation ran only %d runs; no scenario family evaluated", stats1.runs)
	}
	o.Problem.PDRMin = 0.3 // a bound sweep must not invalidate the scenario cache
	second, stats2, err := o.simulateAll(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.runs != 0 {
		t.Fatalf("repeat robust evaluation ran %d fresh simulations", stats2.runs)
	}
	if first[0].screenPDR != second[0].screenPDR ||
		first[0].worstPDR != second[0].worstPDR ||
		first[0].worstScenario != second[0].worstScenario {
		t.Fatalf("cached robust stats diverged: %+v vs %+v", first[0], second[0])
	}
}
