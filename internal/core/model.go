// Package core implements the paper's primary contribution: the Human
// Intranet design-space exploration of Algorithm 1, coordinating a MILP
// candidate generator (the relaxed problem P̃ with the Eq. 9 power
// objective) with the accurate discrete-event simulator.
//
// The package has two halves:
//
//   - model.go lowers the design problem to a mixed integer linear program
//     over internal/linexpr, with an exact linearization of the Eq. (9)
//     objective (products of the routing bit, the node-count indicators,
//     and the power-mode bits become auxiliary binaries);
//   - optimizer.go runs the iterative RunMILP → RunSim → Sort → Update
//     loop with the α-scaled termination bound.
package core

import (
	"fmt"
	"math"

	"hiopt/internal/design"
	"hiopt/internal/linexpr"
	"hiopt/internal/netsim"
)

// milpModel carries the compiled relaxation P̃ together with the variable
// bookkeeping needed to decode MILP solutions into design points and to
// re-state the objective as a cut expression.
type milpModel struct {
	model *linexpr.Model
	// nVars[i] is the binary n_i for body location i.
	nVars []linexpr.VarID
	// pVars[k] is the binary selecting radio Tx mode k.
	pVars []linexpr.VarID
	// macVar is the binary P_MAC (0 = CSMA, 1 = TDMA).
	macVar linexpr.VarID
	// rtVar is the binary P_rt (0 = star, 1 = mesh).
	rtVar linexpr.VarID
	// yVars[m] indicates N == nodeCounts[m].
	yVars      []linexpr.VarID
	nodeCounts []int
	// objective is the Eq. (9) expression in mW (used both as the model
	// objective and as the left-hand side of pruning cuts).
	objective linexpr.Expr
}

// buildMILP lowers the problem's topology and configuration constraints
// plus the Eq. (9) objective to a pure-binary MILP.
//
// Linearization: with y_m the indicator "N = m" and p_k the Tx-mode
// selector, the binary products w_{m,k} = y_m·p_k and u_{m,k} = w_{m,k}·rt
// make Eq. (9) affine:
//
//	P̄ = P_bl + φT_pkt·Σ_{m,k} [ starCoef(m,k)·(w_{m,k} − u_{m,k})
//	                           + meshCoef(m,k)·u_{m,k} ]
//
// where starCoef(m,k) = c_k + 2(m−1)·Rx and
// meshCoef(m,k) = NreTx(m)·(c_k + (m−1)·Rx).
func buildMILP(pr *design.Problem) (*milpModel, error) {
	c := pr.Constraints
	if c.M > 16 {
		return nil, fmt.Errorf("core: at most 16 locations supported, have %d", c.M)
	}
	if c.MinNodes < 2 {
		return nil, fmt.Errorf("core: need MinNodes >= 2, have %d", c.MinNodes)
	}
	m := linexpr.NewModel()
	mm := &milpModel{model: m}

	// Topology bits.
	for i := 0; i < c.M; i++ {
		mm.nVars = append(mm.nVars, m.Binary(fmt.Sprintf("n%d", i)))
	}
	for _, f := range c.Fixed {
		m.Add(fmt.Sprintf("fixed_n%d", f), linexpr.TermOf(mm.nVars[f], 1), linexpr.EQ, 1)
	}
	for gi, grp := range c.AtLeastOneOf {
		var ids []linexpr.VarID
		for _, i := range grp {
			ids = append(ids, mm.nVars[i])
		}
		m.Add(fmt.Sprintf("group%d", gi), linexpr.Sum(ids...), linexpr.GE, 1)
	}
	for ii, im := range c.Implications {
		// n_j used ⇒ n_i used: n_j − n_i <= 0.
		m.Add(fmt.Sprintf("impl%d", ii),
			linexpr.TermOf(mm.nVars[im[1]], 1).PlusTerm(mm.nVars[im[0]], -1), linexpr.LE, 0)
	}
	nSum := linexpr.Sum(mm.nVars...)
	m.Add("min_nodes", nSum, linexpr.GE, float64(c.MinNodes))
	m.Add("max_nodes", nSum, linexpr.LE, float64(c.MaxNodes))

	// Tx power mode one-hot (the paper's p1 + p2 + p3 = 1).
	for k := range pr.Radio.TxModes {
		mm.pVars = append(mm.pVars, m.Binary(fmt.Sprintf("p%d", k+1)))
	}
	m.Add("one_tx_mode", linexpr.Sum(mm.pVars...), linexpr.EQ, 1)

	// Protocol selections.
	mm.macVar = m.Binary("pmac")
	mm.rtVar = m.Binary("prt")

	// Node-count indicators y_m, linked to Σ n_i.
	var yTerms linexpr.Expr
	var linkTerms linexpr.Expr
	for n := c.MinNodes; n <= c.MaxNodes; n++ {
		y := m.Binary(fmt.Sprintf("y%d", n))
		mm.yVars = append(mm.yVars, y)
		mm.nodeCounts = append(mm.nodeCounts, n)
		yTerms = yTerms.PlusTerm(y, 1)
		linkTerms = linkTerms.PlusTerm(y, float64(n))
	}
	m.Add("one_count", yTerms, linexpr.EQ, 1)
	m.Add("count_link", nSum.Minus(linkTerms), linexpr.EQ, 0)

	// Objective, Eq. (9), exactly linearized.
	rx := float64(pr.Radio.RxConsumptionMW)
	scale := pr.RatePPS * pr.Tpkt()
	obj := linexpr.NewExpr(float64(pr.BaselineMW))
	for mi, n := range mm.nodeCounts {
		for k := range pr.Radio.TxModes {
			ck := float64(pr.Radio.TxModes[k].ConsumptionMW)
			w := m.ProductBB(fmt.Sprintf("w_%d_%d", n, k), mm.yVars[mi], mm.pVars[k])
			u := m.ProductBB(fmt.Sprintf("u_%d_%d", n, k), w, mm.rtVar)
			starCoef := scale * (ck + 2*float64(n-1)*rx)
			meshCoef := scale * float64(design.NreTx(n, pr.NHops)) * (ck + float64(n-1)*rx)
			obj = obj.PlusTerm(w, starCoef)
			obj = obj.PlusTerm(u, meshCoef-starCoef)
		}
	}
	mm.objective = obj
	m.SetObjective(obj, false)
	return mm, nil
}

// decode turns a MILP solution vector into a design point.
func (mm *milpModel) decode(x []float64) design.Point {
	var p design.Point
	for i, id := range mm.nVars {
		if x[id] > 0.5 {
			p.Topology |= 1 << uint(i)
		}
	}
	for k, id := range mm.pVars {
		if x[id] > 0.5 {
			p.TxMode = k
		}
	}
	if x[mm.macVar] > 0.5 {
		p.MAC = netsim.TDMA
	} else {
		p.MAC = netsim.CSMA
	}
	if x[mm.rtVar] > 0.5 {
		p.Routing = netsim.Mesh
	} else {
		p.Routing = netsim.Star
	}
	return p
}

// objectiveValue evaluates the compiled Eq. (9) expression at a solution.
func (mm *milpModel) objectiveValue(x []float64) float64 {
	return mm.objective.Eval(x)
}

// checkExactness verifies (in tests and debug assertions) that the
// linearized objective agrees with design.Problem.AnalyticPower on an
// integral solution.
func (mm *milpModel) checkExactness(pr *design.Problem, x []float64) error {
	p := mm.decode(x)
	want := pr.AnalyticPower(p)
	got := mm.objectiveValue(x)
	if math.Abs(got-want) > 1e-6 {
		return fmt.Errorf("core: linearized objective %v != analytic %v for %v", got, want, p)
	}
	return nil
}
