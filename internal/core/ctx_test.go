package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/engine"
)

func TestRunCtxCancelled(t *testing.T) {
	pr := fastProblem(0.9)
	o := NewOptimizer(pr, Options{PoolLimit: 4, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on a done context returned %v, want context.Canceled", err)
	}
	// Cancellation must not poison the optimizer: a fresh run succeeds.
	out, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Best == nil {
		t.Fatal("run after cancellation found no design")
	}
}

func TestRunCtxCancelMidSimulation(t *testing.T) {
	pr := fastProblem(0.9)
	o := NewOptimizer(pr, Options{PoolLimit: 8, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the first candidate's evaluation: the batch must
	// stop at sub-task granularity and RunCtx must surface the ctx error.
	o.evalHook = func(design.Point) { cancel() }
	if _, err := o.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx cancelled mid-simulation returned %v, want context.Canceled", err)
	}
}

// TestOnIterationEvents: the streaming hook must see every recorded
// iteration, in order, with the same P̄* trace as Outcome.Iterations.
func TestOnIterationEvents(t *testing.T) {
	pr := fastProblem(0.9)
	var events []IterationEvent
	o := NewOptimizer(pr, Options{
		Workers:     2,
		OnIteration: func(ev IterationEvent) { events = append(events, ev) },
	})
	out, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(out.Iterations) {
		t.Fatalf("hook saw %d events, outcome records %d iterations", len(events), len(out.Iterations))
	}
	for i, ev := range events {
		if ev.Iter != i {
			t.Fatalf("event %d carries iter %d", i, ev.Iter)
		}
		if ev.PBarStar != out.Iterations[i].PBarStar {
			t.Fatalf("event %d P̄*=%v, iteration records %v", i, ev.PBarStar, out.Iterations[i].PBarStar)
		}
		if ev.PoolSize != len(out.Iterations[i].Candidates) {
			t.Fatalf("event %d pool=%d, iteration has %d candidates", i, ev.PoolSize, len(out.Iterations[i].Candidates))
		}
	}
	last := events[len(events)-1]
	if out.Best != nil && (last.BestPowerMW != out.Best.PowerMW || last.BestPoint == "") {
		t.Fatalf("final event best=%v %q, outcome best %v", last.BestPowerMW, last.BestPoint, out.Best.PowerMW)
	}
}

// TestCacheSaltSeparatesTenants: two optimizers sharing one engine with
// different salts must not answer each other's keys, while equal salts
// share the cache fully — and the salt must never change the result.
func TestCacheSaltSeparatesTenants(t *testing.T) {
	eng, err := engine.New(2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(salt uint64) *Outcome {
		pr := fastProblem(0.9)
		out, err := NewOptimizer(pr, Options{Engine: eng, CacheSalt: salt}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Best == nil {
			t.Fatal("no design found")
		}
		return out
	}
	a := run(1)
	if a.Engine.CacheHits != 0 {
		t.Fatalf("first tenant hit a cold cache: %+v", a.Engine)
	}
	// A different salt is a disjoint namespace: everything re-simulates.
	b := run(2)
	if b.Engine.CacheHits != 0 || b.Engine.Simulated == 0 {
		t.Fatalf("salt 2 shared salt 1's entries: %+v", b.Engine)
	}
	// The same salt shares fully: no fresh simulations.
	c := run(2)
	if c.Engine.Simulated != 0 {
		t.Fatalf("salt 2 rerun re-simulated %d configs: %+v", c.Engine.Simulated, c.Engine)
	}
	// Salting changes cache identity only, never results.
	if !reflect.DeepEqual(a.Best, b.Best) {
		t.Fatalf("salted runs diverged: %+v vs %+v", a.Best, b.Best)
	}
}
