package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hiopt/internal/design"
	"hiopt/internal/engine"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// This file is the ε-constraint Pareto sweep: enumerate the
// NLT/PDR/latency trade-off front by sweeping the reliability bound
// PDRmin, where every front point after the first is a warm dual-simplex
// retarget of one persistent milp.State — a single SetRowRHS on the
// PDR-floor row, the same one-row-move trick RetargetGamma proved out —
// instead of a cold Algorithm 1 restart. The front is provably identical
// to per-bound cold runs (see the record-replay argument on warmBound);
// the cost is one full enumeration at the loosest bound plus incremental
// re-solves, with adjacent bounds sharing every simulation through the
// engine cache.

// ParetoHandle locates the ε-dependent artifact of a sweep compilation —
// the PDR-floor row Σ_m y_m·ceiling(m) >= ε over the one-hot node-count
// selectors — inside the compiled arena. Because the y variables are
// one-hot (Σ y_m = 1), the selected node count's analytic PDR ceiling
// appears on the left with the swept bound ε purely on the right-hand
// side: a bound move is one SetRowRHS call and the warm kernel re-solves
// from its current basis by dual simplex. The row is Protect-tagged:
// presolve must not specialize the matrix against a right-hand side that
// is about to move (which also keeps the row SetRowRHS-addressable).
type ParetoHandle struct {
	// FloorRow is the arena row index of the PDR-floor row.
	FloorRow int
	// Gamma and FailFrac echo the compilation's robust configuration;
	// they determine the per-node-count ceilings frozen into the row's
	// coefficients.
	Gamma    float64
	FailFrac float64
	// Epsilon is the currently targeted floor.
	Epsilon float64
}

// Ceiling is the analytic network-PDR ceiling of an n-node design under
// the compilation's fault model: with Γ adversarial failures each
// delivering only FailFrac of its traffic, the PDR proxy cannot exceed
// (n − Γ(1−FailFrac))/n. In the nominal compilation (Γ = 0) the ceiling
// is 1 for every n — the floor row is then deliberately non-binding (the
// simulator is the feasibility oracle and an analytic cut could wrongly
// exclude designs) but still lives in the basis, so the warm retarget
// path is exercised identically in both modes.
func (h *ParetoHandle) Ceiling(n int) float64 {
	if h.Gamma <= 0 {
		return 1
	}
	return (float64(n) - h.Gamma*(1-h.FailFrac)) / float64(n)
}

// Admits reports whether an n-node design satisfies the floor row at
// bound eps, under the same tolerance the MILP feasibility check uses.
// It is the analytic predicate the warm sweep replays recorded pool
// members against, exactly reproducing what the floor row would have
// pruned in a cold solve at eps.
func (h *ParetoHandle) Admits(n int, eps float64) bool {
	return h.Ceiling(n) >= eps-1e-6
}

// Retarget moves a live warm MILP state (built over this handle's
// compiled arena) to a new floor via a single right-hand-side mutation —
// no recompilation, no cold rebuild.
func (h *ParetoHandle) Retarget(st *milp.State, eps float64) {
	st.SetRowRHS(h.FloorRow, eps)
	h.Epsilon = eps
}

// RetargetArena retargets the compiled arena directly (the cold-path
// equivalent of Retarget, for callers without a warm state).
func (h *ParetoHandle) RetargetArena(work *linexpr.Compiled, eps float64) {
	work.Rows[h.FloorRow].RHS = eps
	h.Epsilon = eps
}

// buildParetoMILP lowers the problem (with its optional Γ-protection
// families) and appends the ε-constraint PDR-floor row targeting eps.
func buildParetoMILP(pr *design.Problem, rc RobustCompile, eps float64) (*milpModel, *ParetoHandle, error) {
	rc = rc.withDefaults(pr)
	mm, _, err := buildRobustMILP(pr, rc)
	if err != nil {
		return nil, nil, err
	}
	h := &ParetoHandle{Gamma: rc.Gamma, FailFrac: rc.FailFrac, Epsilon: eps}
	var floor linexpr.Expr
	for mi, n := range mm.nodeCounts {
		floor = floor.PlusTerm(mm.yVars[mi], h.Ceiling(n))
	}
	m := mm.model
	m.Add("pareto_floor", floor, linexpr.GE, eps)
	h.FloorRow = m.NumConstraints() - 1
	m.Protect(h.FloorRow)
	return mm, h, nil
}

// CompileMILPPareto lowers a problem to its sweep-ready compiled
// relaxation: the (optionally Γ-protected) MILP plus the PDR-floor row at
// the initial bound eps, returned with the objective expression and the
// floor's retarget handle. This is the entry point for driving raw warm
// ε-retarget chains (the pareto_warm_front benchmark) outside the full
// sweep driver.
func CompileMILPPareto(pr *design.Problem, rc RobustCompile, eps float64) (*linexpr.Compiled, linexpr.Expr, *ParetoHandle, error) {
	mm, h, err := buildParetoMILP(pr, rc, eps)
	if err != nil {
		return nil, linexpr.Expr{}, nil, err
	}
	return mm.model.Compile(), mm.objective, h, nil
}

// SweepOptions configure ParetoSweep.
type SweepOptions struct {
	// Bounds are the PDRmin values of the ε-constraint sweep, enforced in
	// ascending order whatever order they are given in (ascending bounds
	// only ever tighten the floor, which is what lets the warm path
	// replay recorded pools instead of re-enumerating). Empty selects
	// DefaultSweepBounds.
	Bounds []float64
	// LatencyMax, when positive, adds a second ε constraint: a candidate
	// is only feasible when its p95 end-to-end delivery latency (seconds)
	// is at or below this bound. It is enforced on the simulated metric —
	// the MILP has no latency model — so it filters candidates, not
	// power classes.
	LatencyMax float64
	// Cold switches to the A/B baseline: every bound is an independent
	// cold Algorithm 1 run (fresh MILP compile and state, full pool
	// enumeration), sharing only the simulation engine. The front is
	// identical to the warm path's; the MILP effort is not — that delta
	// is the point of the sweep.
	Cold bool
	// Adaptive tightens replication spending to the front: full-fidelity
	// evaluations carry a confidence gate whose band spans every swept
	// bound (plus FeasTol and a safety margin), so designs decisively
	// outside the swept reliability range stop replicating early while
	// anything near a bound keeps its full budget. The gate is fixed for
	// the whole sweep, so warm and cold paths see identical metrics. As
	// with Options.AdaptiveReps, a gated engine should not be shared
	// with non-gated users of the same fidelity.
	Adaptive bool
	// Options are the base Algorithm 1 options (engine, robust proposal,
	// pool limits, tolerances). TwoStage is rejected: its screening
	// threshold depends on the bound being swept, which would break
	// warm/cold front identity.
	Options Options
}

// sweepGateSlack widens the Adaptive gate band beyond the swept range so
// the early-stop decision is made safely away from any bound: a gated
// stop requires the PDR confidence interval to clear the whole band, and
// the slack keeps estimate wobble from stopping a design whose true PDR
// sits near the outermost bound.
const sweepGateSlack = 0.02

// DefaultSweepBounds is the default 16-point ε grid, PDRmin 0.50 to 0.95
// in steps of 0.03.
func DefaultSweepBounds() []float64 {
	b := make([]float64, 16)
	for i := range b {
		b[i] = 0.50 + 0.03*float64(i)
	}
	return b
}

// SweepPoint is one ε-constraint front point.
type SweepPoint struct {
	// PDRMin is the reliability bound this point was optimized under.
	PDRMin float64
	// Best is the minimum-power design feasible at the bound (nil when
	// the bound is infeasible).
	Best *Candidate
	// Dominated marks points another sweep point strictly improves on
	// (or renders redundant) in the (PDR, NLT, p95 latency) objective
	// space; the non-dominated remainder is the Pareto front.
	Dominated bool
	// LPIterations is the simplex pivot count this bound cost — the
	// per-point incremental re-solve price (0 for a warm bound fully
	// answered from the record).
	LPIterations int
}

// SweepResult is the outcome of one ε-constraint sweep.
type SweepResult struct {
	// Points holds one entry per swept bound, in ascending bound order.
	Points []SweepPoint
	// LPIterations, MILPNodes and the solve-mode split aggregate the
	// MILP effort of the whole sweep — the headline comparison against
	// the Cold baseline.
	LPIterations   int
	MILPNodes      int
	MILPWarmSolves int
	MILPColdSolves int
	// Evaluations counts candidate evaluations submitted to the engine;
	// CandidateUses counts candidate scorings across all bounds (a
	// design scored at k bounds counts k times). Their ratio — see
	// FreshEvalFrac — is how much of the front rode on shared
	// evaluations. Simulations counts fresh simulator runs; RepsSaved
	// counts gated replications avoided; SimulatedSeconds totals fresh
	// simulated time.
	Evaluations      int
	CandidateUses    int
	Simulations      int
	RepsSaved        int
	SimulatedSeconds float64
	// Engine is the engine counter delta over the sweep; its FreshFrac
	// is the fraction of submissions that needed a fresh simulation
	// (small when adjacent bounds share their evaluations).
	Engine engine.Stats
}

// FreshEvalFrac is the fraction of candidate scorings that required a
// fresh evaluation submission: Evaluations over CandidateUses. The warm
// sweep answers most bounds entirely from recorded evaluations, so the
// fraction is a minority for any front with more than a few points; the
// cold baseline resubmits every bound (its sharing happens one layer
// down, in the engine cache — see Engine.FreshFrac).
func (r *SweepResult) FreshEvalFrac() float64 {
	if r.CandidateUses == 0 {
		return 0
	}
	return float64(r.Evaluations) / float64(r.CandidateUses)
}

// Front returns the non-dominated subset of Points, in bound order.
func (r *SweepResult) Front() []SweepPoint {
	var front []SweepPoint
	for _, p := range r.Points {
		if !p.Dominated {
			front = append(front, p)
		}
	}
	return front
}

// ParetoSweep enumerates the NLT/PDR/latency front over the given
// reliability bounds. The problem's PDRMin field is overwritten (pinned
// to the lowest bound for the sweep's shared evaluation context).
func ParetoSweep(pr *design.Problem, so SweepOptions) (*SweepResult, error) {
	return ParetoSweepCtx(context.Background(), pr, so)
}

// ParetoSweepCtx is ParetoSweep under a cancellation context, honoured at
// class granularity in the driver and at replication granularity inside
// the engine.
func ParetoSweepCtx(ctx context.Context, pr *design.Problem, so SweepOptions) (*SweepResult, error) {
	if so.Options.TwoStage {
		return nil, fmt.Errorf("core: ParetoSweep does not support TwoStage screening: the screen threshold moves with the swept bound, breaking warm/cold front identity")
	}
	bounds := append([]float64(nil), so.Bounds...)
	if len(bounds) == 0 {
		bounds = DefaultSweepBounds()
	}
	sort.Float64s(bounds)
	// Pin the problem bound to the loosest swept value: every
	// bound-sensitive decision inside the shared evaluation machinery
	// (robust-family skip for nominally infeasible candidates, the
	// robust sealing threshold) is then fixed across the sweep, so warm
	// and cold paths make identical calls in identical order.
	pr.PDRMin = bounds[0]
	o := NewOptimizer(pr, so.Options)
	if o.engErr != nil {
		return nil, o.engErr
	}
	if so.Adaptive {
		lo, hi := bounds[0], bounds[len(bounds)-1]
		o.fullGate = &netsim.Gate{
			PDRMin: (lo + hi) / 2,
			Margin: (hi-lo)/2 + o.Options.FeasTol + sweepGateSlack,
		}
	}
	rc := o.robustCompile()
	res := &SweepResult{}
	sw := &sweeper{o: o, so: so, rc: rc, res: res}
	if !so.Cold {
		mm, h, err := buildParetoMILP(o.Problem, rc, bounds[0])
		if err != nil {
			return nil, err
		}
		sw.mm, sw.h = mm, h
		sw.work = mm.model.Compile()
		sw.st = milp.NewState(sw.work, milp.Options{
			DenseLP: o.Options.DenseMILP,
			Workers: o.Options.MILPWorkers,
		})
	}
	engStart := o.eng.Stats()
	for _, b := range bounds {
		lp0 := res.LPIterations
		var best *Candidate
		var err error
		if so.Cold {
			best, err = sw.coldBound(ctx, b)
		} else {
			best, err = sw.warmBound(ctx, b)
		}
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{
			PDRMin: b, Best: best, LPIterations: res.LPIterations - lp0,
		})
	}
	res.Engine = o.eng.Stats().Sub(engStart)
	markDominated(res.Points)
	return res, nil
}

// sweepClass is one recorded power class: the pool enumerated at some
// floor value, with its evaluations filled in lazily (a class discovered
// by an α-terminated extension is recorded unsimulated; a later, tighter
// bound that walks past it pays for its simulations then).
type sweepClass struct {
	pStar  float64
	points []design.Point
	evals  []pointEval
}

// sweeper carries the shared state of one sweep.
type sweeper struct {
	o   *Optimizer
	so  SweepOptions
	rc  RobustCompile
	res *SweepResult

	// Warm-path state: one compiled arena and milp.State persist across
	// every bound, accumulating prune cuts; classes is the record of
	// power classes enumerated so far, ascending in pStar; exhausted
	// marks that enumeration hit MILP exhaustion (at some floor value —
	// every later bound is tighter, so the record is then complete for
	// the rest of the sweep).
	mm        *milpModel
	h         *ParetoHandle
	work      *linexpr.Compiled
	st        *milp.State
	classes   []sweepClass
	exhausted bool
	cuts      int
}

// warmBound answers one bound from the shared record, extending it by
// warm incremental solves only when the record runs out.
//
// Why the replayed front is identical to a cold run at bound b: (1) the
// floor row's only effect on the MILP is excluding node counts whose
// analytic ceiling sits below b, and Admits replays exactly that
// predicate against recorded pool members, so each recorded class
// filtered at b equals the corresponding cold class as a set (a cold
// class that vanishes entirely at b corresponds to a recorded class
// whose filter comes up empty and is skipped, just as cold's enumeration
// skips it); (2) every candidate's simulated metrics are deterministic
// and cached, so warm and cold score identical candidates identically;
// (3) the per-bound incumbent scan reuses Algorithm 1's exact semantics
// (stable sort by simulated power, strictly-better update) over the same
// candidate sequence; and (4) the α bound is checked against the same
// per-class minimum analytic power cold observes, so both walks stop at
// the same class. Classes beyond a bound's α stop cannot change its
// argmin by the α bound's own soundness argument.
func (sw *sweeper) warmBound(ctx context.Context, b float64) (*Candidate, error) {
	o := sw.o
	pMin := math.Inf(1)
	var best *Candidate
	for ci := range sw.classes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cls := &sw.classes[ci]
		var sel []int
		pStar := math.Inf(1)
		for i, p := range cls.points {
			if !sw.h.Admits(p.N(), b) {
				continue
			}
			sel = append(sel, i)
			if a := o.Problem.AnalyticPower(p); a < pStar {
				pStar = a
			}
		}
		if len(sel) == 0 {
			continue
		}
		if sw.alphaStop(best, pMin, pStar, b) {
			return best, nil
		}
		if err := sw.ensureEvals(ctx, cls); err != nil {
			return nil, err
		}
		updateIncumbent(sw.buildCandidates(cls, sel, b), &pMin, &best)
	}
	// The record is spent and the walk did not terminate: retarget the
	// floor to b and extend the enumeration warm. The retarget is the
	// one-row move — the persistent state re-solves from its current
	// basis (with all accumulated prune cuts) by dual simplex.
	if !sw.exhausted && sw.h.Epsilon != b {
		sw.h.Retarget(sw.st, b)
	}
	for !sw.exhausted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pool, agg, err := sw.st.SolvePool(o.Options.PoolLimit, 1e-6)
		if err != nil {
			return nil, err
		}
		sw.countSolve(agg)
		if agg.Status != milp.Optimal || len(pool) == 0 {
			sw.exhausted = true
			break
		}
		pStar := agg.Objective
		points, err := sw.decodePool(sw.mm, sw.work, pool)
		if err != nil {
			return nil, err
		}
		sw.classes = append(sw.classes, sweepClass{pStar: pStar, points: points})
		// Prune the class from the persistent state whether or not this
		// bound consumes it, so extension never re-enumerates it.
		sw.work.AddExprRow(fmt.Sprintf("sweep_prune_%d", sw.cuts), sw.mm.objective, linexpr.GE, pStar+o.Options.CutEpsilonMW)
		sw.cuts++
		if sw.alphaStop(best, pMin, pStar, b) {
			return best, nil
		}
		cls := &sw.classes[len(sw.classes)-1]
		if err := sw.ensureEvals(ctx, cls); err != nil {
			return nil, err
		}
		sel := make([]int, len(cls.points))
		for i := range sel {
			sel[i] = i
		}
		updateIncumbent(sw.buildCandidates(cls, sel, b), &pMin, &best)
	}
	return best, nil
}

// coldBound is one independent cold Algorithm 1 run at bound b: fresh
// compile (floor row at b), fresh MILP state, full pool enumeration.
// Only the simulation engine is shared.
func (sw *sweeper) coldBound(ctx context.Context, b float64) (*Candidate, error) {
	o := sw.o
	mm, _, err := buildParetoMILP(o.Problem, sw.rc, b)
	if err != nil {
		return nil, err
	}
	work := mm.model.Compile()
	st := milp.NewState(work, milp.Options{
		DenseLP: o.Options.DenseMILP,
		Workers: o.Options.MILPWorkers,
	})
	pMin := math.Inf(1)
	var best *Candidate
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pool, agg, err := st.SolvePool(o.Options.PoolLimit, 1e-6)
		if err != nil {
			return nil, err
		}
		sw.countSolve(agg)
		if agg.Status != milp.Optimal || len(pool) == 0 {
			break
		}
		pStar := agg.Objective
		if sw.alphaStop(best, pMin, pStar, b) {
			break
		}
		points, err := sw.decodePool(mm, work, pool)
		if err != nil {
			return nil, err
		}
		cls := sweepClass{pStar: pStar, points: points}
		if err := sw.ensureEvals(ctx, &cls); err != nil {
			return nil, err
		}
		sel := make([]int, len(points))
		for i := range sel {
			sel[i] = i
		}
		updateIncumbent(sw.buildCandidates(&cls, sel, b), &pMin, &best)
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), mm.objective, linexpr.GE, pStar+o.Options.CutEpsilonMW)
	}
	return best, nil
}

// alphaStop is Algorithm 1's line-5 early termination at bound b.
func (sw *sweeper) alphaStop(best *Candidate, pMin, pStar, b float64) bool {
	return !sw.o.Options.DisableAlphaBound && best != nil &&
		pStar/sw.o.alphaAt(best.Point, b) > pMin
}

func (sw *sweeper) countSolve(agg *milp.Solution) {
	sw.res.LPIterations += agg.LPIterations
	sw.res.MILPNodes += agg.Nodes
	sw.res.MILPWarmSolves += agg.WarmSolves
	sw.res.MILPColdSolves += agg.ColdSolves
}

// decodePool decodes and defensively verifies a solution pool, exactly
// as RunCtx does.
func (sw *sweeper) decodePool(mm *milpModel, work *linexpr.Compiled, pool []milp.PoolSolution) ([]design.Point, error) {
	points := make([]design.Point, len(pool))
	for i, ps := range pool {
		if err := milp.CheckFeasible(work, ps.X, 1e-6); err != nil {
			return nil, fmt.Errorf("core: MILP returned infeasible pool member: %v", err)
		}
		if err := mm.checkExactness(sw.o.Problem, ps.X); err != nil {
			return nil, err
		}
		points[i] = mm.decode(ps.X)
	}
	return points, nil
}

// ensureEvals simulates a class's pool if it has not been simulated yet
// (through the shared engine: a point already evaluated for an earlier
// bound, or by a cold A/B pass, is a cache hit).
func (sw *sweeper) ensureEvals(ctx context.Context, cls *sweepClass) error {
	if cls.evals != nil {
		return nil
	}
	evals, stats, err := sw.o.simulateAll(ctx, cls.points)
	if err != nil {
		return err
	}
	cls.evals = evals
	sw.res.Evaluations += len(cls.points)
	sw.res.Simulations += stats.runs
	sw.res.SimulatedSeconds += stats.seconds
	sw.res.RepsSaved += stats.savedRuns
	return nil
}

// buildCandidates scores the selected pool members against bound b. The
// swept bound is the feasibility floor for both the nominal PDR and, in
// robust mode, the scenario-family statistic; LatencyMax (when set)
// vetoes candidates whose p95 latency exceeds it.
func (sw *sweeper) buildCandidates(cls *sweepClass, sel []int, b float64) []Candidate {
	o := sw.o
	sw.res.CandidateUses += len(sel)
	cands := make([]Candidate, 0, len(sel))
	for _, i := range sel {
		p := cls.points[i]
		e := cls.evals[i]
		cand := Candidate{
			Point:         p,
			AnalyticMW:    o.Problem.AnalyticPower(p),
			PDR:           e.res.PDR,
			PowerMW:       float64(e.res.MaxPower),
			NLTDays:       e.res.NLTDays,
			WorstPDR:      e.res.PDR,
			WorstScenario: e.worstScenario,
			MeanLatency:   e.res.MeanLatency,
			P95Latency:    e.res.P95Latency,
		}
		cand.Feasible = cand.PDR >= b-o.Options.FeasTol
		if e.robust {
			cand.WorstPDR = e.worstPDR
			cand.Feasible = cand.Feasible && e.screenPDR >= b-o.Options.FeasTol
		}
		if sw.so.LatencyMax > 0 && cand.P95Latency > sw.so.LatencyMax {
			cand.Feasible = false
		}
		cands = append(cands, cand)
	}
	return cands
}

// updateIncumbent is Algorithm 1's line 8–10 over one class: stable sort
// by simulated power, strictly-better incumbent update.
func updateIncumbent(cands []Candidate, pMin *float64, best **Candidate) {
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].PowerMW < cands[b].PowerMW
	})
	for i := range cands {
		c := cands[i]
		if c.Feasible && c.PowerMW < *pMin {
			*pMin = c.PowerMW
			cc := c
			*best = &cc
		}
	}
}

// markDominated flags sweep points that another point dominates in the
// (PDR, NLT, p95 latency) objective space: at least as good on every
// axis and strictly better on one. Infeasible bounds are dominated by
// definition, as is the lower-bound duplicate when adjacent bounds
// select the same design (the tighter bound subsumes it).
func markDominated(points []SweepPoint) {
	for i := range points {
		pi := &points[i]
		if pi.Best == nil {
			pi.Dominated = true
			continue
		}
		bi := pi.Best
		for j := range points {
			if j == i || points[j].Best == nil {
				continue
			}
			bj := points[j].Best
			better := bj.PDR > bi.PDR || bj.NLTDays > bi.NLTDays || bj.P95Latency < bi.P95Latency
			asGood := bj.PDR >= bi.PDR && bj.NLTDays >= bi.NLTDays && bj.P95Latency <= bi.P95Latency
			if asGood && (better || (j > i && bj.Point.Key() == bi.Point.Key())) {
				pi.Dominated = true
				break
			}
		}
	}
}
