package core

import (
	"math"
	"reflect"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// TestRobustGammaZeroIsNominal: the Γ = 0 robust compilation must be
// bit-identical to the nominal one — same arena, same objective — so
// that every existing pin (pool classes, paper-chain powers) is
// untouched by the robust machinery's existence.
func TestRobustGammaZeroIsNominal(t *testing.T) {
	pr := design.PaperProblem(0.9)
	nomC, nomObj, err := CompileMILP(pr)
	if err != nil {
		t.Fatal(err)
	}
	robC, robObj, h, err := CompileMILPRobust(pr, RobustCompile{})
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		t.Fatalf("Γ=0 compilation returned a handle: %+v", h)
	}
	if !reflect.DeepEqual(nomC, robC) {
		t.Fatal("Γ=0 compiled arena differs from nominal")
	}
	if !reflect.DeepEqual(nomObj, robObj) {
		t.Fatal("Γ=0 objective differs from nominal")
	}
}

// TestRobustCompileStructure pins the shape of the Γ = 1 lowering: one
// protected link row per non-coordinator location, one RHS-encoded
// availability row, and the availability arithmetic N >= Γ(1−φ)/(1−floor).
func TestRobustCompileStructure(t *testing.T) {
	pr := design.PaperProblem(0.9)
	c, _, h, err := CompileMILPRobust(pr, RobustCompile{Gamma: 1, PDRFloor: 0.83})
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("no handle at Γ=1")
	}
	if want := pr.Constraints.M - 1; len(h.LinkRows) != want {
		t.Fatalf("link rows: got %d, want %d", len(h.LinkRows), want)
	}
	if h.PowerRow != -1 {
		t.Fatalf("power row %d present without a budget", h.PowerRow)
	}
	// The link and availability duals are eliminated in closed form;
	// auxiliaries appear only with a multi-term power family.
	if h.AuxVars != 0 {
		t.Fatalf("aux vars: got %d, want 0 without a power budget", h.AuxVars)
	}
	cp, _, hp, err := CompileMILPRobust(pr, RobustCompile{Gamma: 1, PDRFloor: 0.83, PowerBudgetMW: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hp.PowerRow < 0 || hp.AuxVars == 0 {
		t.Fatalf("power family missing: row %d, aux %d", hp.PowerRow, hp.AuxVars)
	}
	if !cp.Rows[hp.PowerRow].Skip {
		t.Fatal("power row not Skip-tagged")
	}
	if got, want := c.Rows[h.AvailRow].RHS, -(1-0.25)*1.0; got != want {
		t.Fatalf("avail RHS: got %g, want %g", got, want)
	}
	if !c.Rows[h.AvailRow].Skip {
		t.Fatal("avail row not Skip-tagged for presolve opacity")
	}
	for _, r := range h.LinkRows {
		if !c.Rows[r].Skip {
			t.Fatalf("link row %d not Skip-tagged", r)
		}
	}
	// Retarget validation: Γ=0 is structurally nominal, and crossing the
	// min(Γ,1) saturation boundary changes the compiled link rows.
	if err := h.RetargetArena(c, 0); err == nil {
		t.Fatal("retarget to Γ=0 must be rejected")
	}
	if err := h.RetargetArena(c, 0.5); err == nil {
		t.Fatal("retarget across the saturation boundary must be rejected")
	}
	if err := h.RetargetArena(c, 3); err != nil {
		t.Fatalf("retarget 1 -> 3: %v", err)
	}
	if got, want := c.Rows[h.AvailRow].RHS, -(1-0.25)*3.0; got != want {
		t.Fatalf("avail RHS after retarget: got %g, want %g", got, want)
	}
}

// poolPointSet decodes and deduplicates a pool into design-point keys.
func poolPointSet(t *testing.T, pr *design.Problem, rc RobustCompile, gamma float64) (map[uint32]design.Point, *milp.Solution) {
	t.Helper()
	rc.Gamma = gamma
	mm, _, err := buildRobustMILP(pr, rc)
	if err != nil {
		t.Fatal(err)
	}
	pool, agg, err := milp.NewState(mm.model.Compile(), milp.Options{}).SolvePool(0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	set := map[uint32]design.Point{}
	for _, ps := range pool {
		p := mm.decode(ps.X)
		set[p.Key()] = p
	}
	return set, agg
}

// TestRetargetGammaWarmMatchesCold: sweeping Γ on a live warm state via
// RetargetGamma must enumerate exactly the pools a cold recompile at
// each Γ produces, across an up-down sweep — the correctness contract
// behind the milp_gamma_warm benchmark and hisweep -gamma.
func TestRetargetGammaWarmMatchesCold(t *testing.T) {
	pr := design.PaperProblem(0.9)
	rc := RobustCompile{PDRFloor: 0.83}
	warmRC := rc
	warmRC.Gamma = 1
	mm, h, err := buildRobustMILP(pr, warmRC)
	if err != nil {
		t.Fatal(err)
	}
	st := milp.NewState(mm.model.Compile(), milp.Options{})
	for _, gamma := range []float64{1, 2, 3, 2, 1} {
		if err := h.RetargetGamma(st, gamma); err != nil {
			t.Fatalf("retarget to Γ=%g: %v", gamma, err)
		}
		pool, agg, err := st.SolvePool(0, 1e-6)
		if err != nil {
			t.Fatalf("warm Γ=%g: %v", gamma, err)
		}
		warm := map[uint32]design.Point{}
		for _, ps := range pool {
			p := mm.decode(ps.X)
			warm[p.Key()] = p
		}
		cold, coldAgg := poolPointSet(t, pr, rc, gamma)
		if agg.Status != coldAgg.Status {
			t.Fatalf("Γ=%g: status %v warm vs %v cold", gamma, agg.Status, coldAgg.Status)
		}
		if agg.Status == milp.Optimal && math.Abs(agg.Objective-coldAgg.Objective) > 1e-9 {
			t.Fatalf("Γ=%g: objective %g warm vs %g cold", gamma, agg.Objective, coldAgg.Objective)
		}
		if len(warm) != len(cold) {
			t.Fatalf("Γ=%g: pool %d warm vs %d cold", gamma, len(warm), len(cold))
		}
		for k := range cold {
			if _, ok := warm[k]; !ok {
				t.Fatalf("Γ=%g: cold pool member %v missing from warm pool", gamma, cold[k])
			}
		}
	}
}

// TestGammaOnePoolShape pins what the Γ = 1 protected relaxation
// proposes first at the 0.83 robust floor: the availability row demands
// N >= 0.75/0.17 ⇒ N >= 5 (the N = 4 power classes the nominal oracle
// would have to simulate and reject are never proposed), and the
// protected link budget burns the ~4.8 dB ankle headroom, forcing the
// strongest Tx mode on every star.
func TestGammaOnePoolShape(t *testing.T) {
	pr := design.PaperProblem(0.9)
	set, agg := poolPointSet(t, pr, RobustCompile{PDRFloor: 0.83}, 1)
	if agg.Status != milp.Optimal {
		t.Fatalf("status %v", agg.Status)
	}
	if len(set) == 0 {
		t.Fatal("empty pool")
	}
	for _, p := range set {
		if p.N() < 5 {
			t.Fatalf("pool member %v has N=%d < 5", p, p.N())
		}
		if p.Routing == netsim.Star && p.TxMode != 2 {
			t.Fatalf("star pool member %v not forced to the strongest Tx mode", p)
		}
	}
}
