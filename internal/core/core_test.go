package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"hiopt/internal/design"
	"hiopt/internal/linexpr"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
)

// fastProblem returns a reduced-fidelity paper problem for cheap tests.
func fastProblem(pdrMin float64) *design.Problem {
	pr := design.PaperProblem(pdrMin)
	pr.Duration = 20
	pr.Runs = 1
	return pr
}

func TestBuildMILPFirstPoolIsCheapestClass(t *testing.T) {
	pr := fastProblem(0.9)
	mm, err := buildMILP(pr)
	if err != nil {
		t.Fatal(err)
	}
	pool, agg, err := milp.SolvePool(mm.model.Compile(), milp.Options{}, 0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Status != milp.Optimal {
		t.Fatalf("status = %v", agg.Status)
	}
	// The cheapest power class: N=4 star at the lowest Tx mode. Every
	// pool member must decode to it, and MAC must take both values across
	// the pool (it has no power cost).
	wantPower := pr.AnalyticPower(design.Point{
		Topology: 1<<0 | 1<<1 | 1<<3 | 1<<5, TxMode: 0, Routing: netsim.Star})
	macs := map[netsim.MACKind]bool{}
	topos := map[uint16]bool{}
	for _, ps := range pool {
		p := mm.decode(ps.X)
		if p.Routing != netsim.Star || p.TxMode != 0 || p.N() != 4 {
			t.Errorf("pool member %v is not a 4-node star at lowest power", p)
		}
		if math.Abs(pr.AnalyticPower(p)-wantPower) > 1e-9 {
			t.Errorf("pool member %v analytic power %v != %v", p, pr.AnalyticPower(p), wantPower)
		}
		if math.Abs(ps.Objective-wantPower) > 1e-6 {
			t.Errorf("MILP objective %v != analytic %v", ps.Objective, wantPower)
		}
		macs[p.MAC] = true
		topos[p.Topology] = true
	}
	// 8 four-node topologies × 2 MACs.
	if len(pool) != 16 {
		t.Errorf("pool size = %d, want 16", len(pool))
	}
	if !macs[netsim.CSMA] || !macs[netsim.TDMA] {
		t.Error("pool missing a MAC setting")
	}
	if len(topos) != 8 {
		t.Errorf("pool covers %d topologies, want 8", len(topos))
	}
}

func TestMILPObjectiveMatchesAnalyticEverywhere(t *testing.T) {
	// Pin every decision to each feasible design point via equality rows
	// and check the linearized objective equals Eq. (9).
	pr := fastProblem(0.9)
	pts := pr.Points()
	// Subsample for speed: every 37th point still covers all classes.
	for i := 0; i < len(pts); i += 37 {
		p := pts[i]
		mm, err := buildMILP(pr)
		if err != nil {
			t.Fatal(err)
		}
		m := mm.model
		for loc, id := range mm.nVars {
			v := 0.0
			if p.Uses(loc) {
				v = 1
			}
			m.Add("", linexpr.TermOf(id, 1), linexpr.EQ, v)
		}
		for k, id := range mm.pVars {
			v := 0.0
			if k == p.TxMode {
				v = 1
			}
			m.Add("", linexpr.TermOf(id, 1), linexpr.EQ, v)
		}
		mv := 0.0
		if p.MAC == netsim.TDMA {
			mv = 1
		}
		m.Add("", linexpr.TermOf(mm.macVar, 1), linexpr.EQ, mv)
		rv := 0.0
		if p.Routing == netsim.Mesh {
			rv = 1
		}
		m.Add("", linexpr.TermOf(mm.rtVar, 1), linexpr.EQ, rv)

		s, err := milp.Solve(m.Compile(), milp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != milp.Optimal {
			t.Fatalf("point %v: pinned MILP %v", p, s.Status)
		}
		if got := mm.decode(s.X); got != p {
			t.Fatalf("decode mismatch: got %v, want %v", got, p)
		}
		if err := mm.checkExactness(pr, s.X); err != nil {
			t.Fatalf("point %v: %v", p, err)
		}
		if math.Abs(s.Objective-pr.AnalyticPower(p)) > 1e-6 {
			t.Fatalf("point %v: MILP %v != analytic %v", p, s.Objective, pr.AnalyticPower(p))
		}
	}
}

func TestBuildMILPHonorsImplications(t *testing.T) {
	// The paper's example constraint "location i must be used if location
	// j is used" (n_j − n_i ≤ 0): require the back (9) whenever the head
	// (8) is used. Every MILP pool member must satisfy it.
	pr := fastProblem(0.9)
	pr.Constraints.Implications = [][2]int{{9, 8}}
	// Force the head into the topology so the implication bites.
	pr.Constraints.Fixed = append(pr.Constraints.Fixed, 8)
	mm, err := buildMILP(pr)
	if err != nil {
		t.Fatal(err)
	}
	pool, agg, err := milp.SolvePool(mm.model.Compile(), milp.Options{}, 0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Status != milp.Optimal || len(pool) == 0 {
		t.Fatalf("status %v, pool %d", agg.Status, len(pool))
	}
	for _, ps := range pool {
		p := mm.decode(ps.X)
		if p.Uses(8) && !p.Uses(9) {
			t.Errorf("pool member %v violates the head→back implication", p)
		}
		if !p.Uses(8) {
			t.Errorf("pool member %v missing the fixed head node", p)
		}
	}
}

func TestWriteRelaxationLP(t *testing.T) {
	var b strings.Builder
	if err := WriteRelaxationLP(fastProblem(0.9), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Minimize", "fixed_n0", "one_tx_mode", "Binaries", "End"} {
		if !strings.Contains(out, want) {
			t.Errorf("relaxation LP missing %q", want)
		}
	}
}

func TestFirstPoolMatchesOptimizerFirstIteration(t *testing.T) {
	pr := fastProblem(0.9)
	pool, err := FirstPool(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 16 {
		t.Fatalf("first pool size = %d, want 16", len(pool))
	}
	for _, p := range pool {
		if !pr.Constraints.Satisfied(p.Topology) {
			t.Errorf("pool point %v violates topology constraints", p)
		}
	}
}

func TestBuildMILPRejectsWideMask(t *testing.T) {
	pr := fastProblem(0.9)
	pr.Constraints.M = 17
	if _, err := buildMILP(pr); err == nil {
		t.Error("buildMILP accepted M > 16")
	}
}

func TestOptimizerFindsFeasibleOptimum(t *testing.T) {
	pr := fastProblem(0.5)
	opt := NewOptimizer(pr, Options{})
	out, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Optimal || out.Best == nil {
		t.Fatalf("status = %v", out.Status)
	}
	if !out.Best.Feasible || out.Best.PDR < pr.PDRMin-opt.Options.FeasTol {
		t.Errorf("best is not feasible: %+v", out.Best)
	}
	// The incumbent must be the minimum simulated power over all feasible
	// candidates the search saw.
	for _, it := range out.Iterations {
		for _, c := range it.Candidates {
			if c.Feasible && c.PowerMW < out.Best.PowerMW-1e-12 {
				t.Errorf("feasible candidate %v beats reported best", c.Point)
			}
		}
	}
	if out.Evaluations == 0 || out.Simulations < out.Evaluations {
		t.Errorf("bogus counters: %+v", out)
	}
}

func TestOptimizerIterationsHaveIncreasingPower(t *testing.T) {
	pr := fastProblem(0.9)
	out, err := NewOptimizer(pr, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out.Iterations); i++ {
		if out.Iterations[i].PBarStar <= out.Iterations[i-1].PBarStar {
			t.Errorf("P̄* not increasing: iter %d %v <= iter %d %v",
				i, out.Iterations[i].PBarStar, i-1, out.Iterations[i-1].PBarStar)
		}
	}
	// Candidates within an iteration share the analytic power class.
	for _, it := range out.Iterations {
		for _, c := range it.Candidates {
			if math.Abs(c.AnalyticMW-it.PBarStar) > 1e-6 {
				t.Errorf("candidate %v analytic %v != class %v", c.Point, c.AnalyticMW, it.PBarStar)
			}
		}
	}
}

func TestOptimizerDeterminism(t *testing.T) {
	run := func() *Outcome {
		out, err := NewOptimizer(fastProblem(0.7), Options{}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Best.Point != b.Best.Point || a.Evaluations != b.Evaluations ||
		math.Abs(a.Best.PowerMW-b.Best.PowerMW) > 1e-12 {
		t.Errorf("optimizer not deterministic: %+v vs %+v", a.Best, b.Best)
	}
}

func TestOptimizerInfeasibleConstraints(t *testing.T) {
	pr := fastProblem(0.5)
	pr.Constraints.MinNodes = 7 // contradicts MaxNodes = 6
	out, err := NewOptimizer(pr, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Infeasible || out.Best != nil {
		t.Fatalf("want infeasible, got %v", out.Status)
	}
	if out.Evaluations != 0 {
		t.Errorf("infeasible MILP still ran %d evaluations", out.Evaluations)
	}
}

func TestOptimizerPoolLimit(t *testing.T) {
	pr := fastProblem(0.5)
	out, err := NewOptimizer(pr, Options{PoolLimit: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range out.Iterations {
		if len(it.Candidates) > 4 {
			t.Errorf("iteration %d pool %d exceeds limit", i, len(it.Candidates))
		}
	}
	if out.Status != Optimal {
		t.Errorf("pool-limited run failed: %v", out.Status)
	}
}

func TestAlphaBoundSavesWork(t *testing.T) {
	// Restrict to 4-node topologies so the exhaustion path (α bound off)
	// stays cheap: 6 power classes instead of 15.
	smallProblem := func() *design.Problem {
		pr := fastProblem(0.5)
		pr.Constraints.MaxNodes = 4
		return pr
	}
	with, err := NewOptimizer(smallProblem(), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewOptimizer(smallProblem(), Options{DisableAlphaBound: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !with.TerminatedByAlpha {
		t.Error("α bound never triggered at PDRmin=50%")
	}
	if without.TerminatedByAlpha {
		t.Error("disabled α bound reported as triggered")
	}
	if without.Evaluations <= with.Evaluations {
		t.Errorf("α bound saved nothing: %d vs %d evaluations", with.Evaluations, without.Evaluations)
	}
	// Both must agree on the optimum's power class (same analytic class).
	if math.Abs(with.Best.AnalyticMW-without.Best.AnalyticMW) > 1e-9 {
		t.Errorf("ablation changed the optimum class: %v vs %v", with.Best.AnalyticMW, without.Best.AnalyticMW)
	}
}

func TestAlphaValue(t *testing.T) {
	pr := fastProblem(0.5)
	o := NewOptimizer(pr, Options{})
	star := design.Point{Topology: 1<<0 | 1<<1 | 1<<3 | 1<<5, TxMode: 1, Routing: netsim.Star}
	a := o.alpha(star)
	// α = P̄/P̄lb = (Pbl + s(tx+2(N-1)rx)) / (Pbl + s(tx + 0.5·2(N-1)rx)).
	s := pr.RatePPS * pr.Tpkt()
	want := (0.1 + s*(11.56+106.2)) / (0.1 + s*(11.56+0.5*106.2))
	if math.Abs(a-want) > 1e-9 {
		t.Errorf("alpha = %v, want %v", a, want)
	}
	if a <= 1 {
		t.Errorf("alpha = %v, must exceed 1 for PDRmin < 1", a)
	}
	// At PDRmin = 1 the correction vanishes.
	pr2 := fastProblem(1.0)
	o2 := NewOptimizer(pr2, Options{})
	if got := o2.alpha(star); math.Abs(got-1) > 1e-12 {
		t.Errorf("alpha at PDRmin=1 is %v, want 1", got)
	}
}

func TestCacheAvoidsResimulation(t *testing.T) {
	pr := fastProblem(0.5)
	o := NewOptimizer(pr, Options{})
	pts := []design.Point{
		{Topology: 1<<0 | 1<<1 | 1<<3 | 1<<5, TxMode: 0, Routing: netsim.Star},
		{Topology: 1<<0 | 1<<1 | 1<<3 | 1<<5, TxMode: 0, Routing: netsim.Star},
	}
	res, stats, err := o.simulateAll(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].res != res[1].res {
		t.Error("duplicate points returned distinct results")
	}
	if stats.runs != 1*pr.Runs {
		t.Errorf("runs = %d, want %d (second point cached)", stats.runs, pr.Runs)
	}
	if stats.seconds != pr.Duration*float64(pr.Runs) {
		t.Errorf("seconds = %v, want %v", stats.seconds, pr.Duration*float64(pr.Runs))
	}
	// A later call with the same point must be free.
	_, stats2, err := o.simulateAll(context.Background(), pts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if stats2.runs != 0 {
		t.Errorf("cached re-evaluation ran %d sims", stats2.runs)
	}
}

func TestTwoStageScreensOutInfeasible(t *testing.T) {
	// At PDRmin=90%, the −20 dBm star classes (PDR ≈ 35%) must be
	// screened out by the cheap pass; the answer must match the
	// single-stage run's power class.
	single, err := NewOptimizer(fastProblem(0.9), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewOptimizer(fastProblem(0.9), Options{TwoStage: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if two.ScreenedOut == 0 {
		t.Error("two-stage run screened nothing out at PDRmin=90%")
	}
	if two.Best == nil || single.Best == nil {
		t.Fatal("missing results")
	}
	if two.Best.AnalyticMW != single.Best.AnalyticMW {
		t.Errorf("two-stage changed the optimum class: %v vs %v",
			two.Best.AnalyticMW, single.Best.AnalyticMW)
	}
	if two.SimulatedSeconds >= single.SimulatedSeconds {
		t.Errorf("two-stage did not reduce simulated time: %v vs %v seconds",
			two.SimulatedSeconds, single.SimulatedSeconds)
	}
}

func TestSimulatedSecondsAccounting(t *testing.T) {
	pr := fastProblem(0.5)
	out, err := NewOptimizer(pr, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(out.Simulations) * pr.Duration
	if out.SimulatedSeconds != want {
		t.Errorf("SimulatedSeconds = %v, want runs×duration = %v", out.SimulatedSeconds, want)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("Status strings")
	}
}
