# Development entry points. `make check` is the full gate: the tier-1
# build-and-test pass plus `go vet`, a gofmt cleanliness gate, and the
# race detector on the packages with concurrent evaluation loops.
# `make bench-smoke` compiles and runs every benchmark once — enough to
# catch bit-rot in the perf harness without waiting for statistically
# meaningful timings. `make benchcmp` re-measures the micro-benchmarks
# and diffs them against the checked-in BENCH_simcore.json baseline,
# failing on >10% ns/op regressions.

GO ?= go

.PHONY: check build test vet fmt race bench-smoke benchcmp benchcmp-auto engine-smoke robust-smoke milp-smoke gamma-smoke cache-smoke serve-smoke pareto-smoke

check: build test vet race fmt gamma-smoke serve-smoke pareto-smoke benchcmp-auto

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# -timeout 30m: internal/core carries the ~50 s Γ=1 slab known-cost pin
# (DESIGN.md §14), which the race detector stretches past go test's
# default 10 m per-package budget on slow boxes.
race:
	$(GO) test -race -timeout 30m ./internal/engine/ ./internal/core/ ./internal/exhaustive/ ./internal/netsim/ ./internal/fault/ ./internal/lp/ ./internal/lp/presolve/ ./internal/milp/
	$(GO) test -race -short -timeout 30m ./internal/serve/

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The perf-regression gate: re-measure the simulator micro-benchmarks
# in-process (hibench -benchjson) and diff against the checked-in
# baseline. Fails when any benchmark's ns/op regressed by more than 10%.
# Skips the slow experiment wall-time section via -exp t1.
benchcmp:
	$(GO) run ./cmd/hibench -exp t1 -benchjson /tmp/hibench-new.json > /dev/null
	$(GO) run ./cmd/hibench -cmp BENCH_simcore.json /tmp/hibench-new.json

# benchcmp, but only when a checked-in baseline exists — the form wired
# into `make check` so a fresh clone without a snapshot still passes.
# Timings on shared/virtualized boxes flap by ±30% run to run, so the
# check-wired gate widens the ns/op threshold to 50% (a real hot-path
# regression still trips it) while keeping the near-deterministic
# allocs/op and B/op gates at the strict 10%; `make benchcmp` remains
# the strict timing gate for quiet machines.
benchcmp-auto:
	@if [ -f BENCH_simcore.json ]; then \
		$(GO) run ./cmd/hibench -exp t1 -benchjson /tmp/hibench-new.json > /dev/null && \
		$(GO) run ./cmd/hibench -cmp -nsdelta 0.5 BENCH_simcore.json /tmp/hibench-new.json; \
	else echo "benchcmp-auto: no BENCH_simcore.json baseline, skipping"; fi

# A tiny Γ ∈ {0,1} propose-and-verify chain at the attainable 0.6 robust
# floor and 10 s horizon: screen-and-cut (Γ=0) walks three nominal power
# classes and verifies the survivors against k=1 faults; Γ=1 compiles the
# protection into the relaxation and verifies its first pool. Both must
# land on a robust-feasible design (hiopt exits 2 otherwise).
gamma-smoke:
	$(GO) run ./cmd/hiopt -robust -kfail 1 -robustpdrmin 0.6 -duration 10 -maxiter 3 -adaptive > /dev/null
	$(GO) run ./cmd/hiopt -gamma 1 -robustpdrmin 0.6 -duration 10 -maxiter 1 -adaptive > /dev/null

# The evaluation-engine gate: the determinism/dedup/worker-pool property
# tests under the race detector, plus one pass of the engine benchmarks
# (dispatch overhead and cache-hit path).
engine-smoke:
	$(GO) test -race -count=1 ./internal/engine/
	$(GO) test -run=NONE -bench='BenchmarkEngine' -benchtime=1x .

# The persistent-cache gate: a cold hisweep populates a cache file, a
# second process restarts from it, and the warm run must (a) produce a
# bit-identical CSV and (b) answer >= 90% of its submissions without
# re-simulating (the "N simulated" figure of the engine stats line).
cache-smoke:
	@rm -f /tmp/hiopt-cache-smoke.bin /tmp/hiopt-cache-cold.csv /tmp/hiopt-cache-warm.csv
	$(GO) run ./cmd/hisweep -duration 5 -cachefile /tmp/hiopt-cache-smoke.bin -csv /tmp/hiopt-cache-cold.csv > /tmp/hiopt-cache-cold.out
	$(GO) run ./cmd/hisweep -duration 5 -cachefile /tmp/hiopt-cache-smoke.bin -csv /tmp/hiopt-cache-warm.csv > /tmp/hiopt-cache-warm.out
	cmp /tmp/hiopt-cache-cold.csv /tmp/hiopt-cache-warm.csv
	@awk '/^engine:/ { sub(",", "", $$2); sub(",", "", $$4); sub(",", "", $$2); \
		if ($$4 + 0 > 0.10 * $$2) { \
			printf "cache-smoke: warm run re-simulated %s of %s submissions (> 10%%)\n", $$4, $$2; exit 1; } \
		else { printf "cache-smoke: warm run re-simulated %s of %s submissions\n", $$4, $$2; ok = 1 } } \
		END { if (!ok) { print "cache-smoke: no engine stats line in warm output"; exit 1 } }' /tmp/hiopt-cache-warm.out

# The ε-constraint front gate: (a) the warm record-replay sweep must
# select the exact per-bound optima of independent cold runs at >= 5×
# fewer simplex pivots (the acceptance property test), and (b) a small
# hisweep -pareto front run twice must emit byte-identical CSVs (the
# sweep is deterministic end to end).
pareto-smoke:
	$(GO) test -count=1 -run 'TestParetoSweepWarmMatchesCold' -v ./internal/core/
	@rm -f /tmp/hiopt-pareto-a.csv /tmp/hiopt-pareto-b.csv
	$(GO) run ./cmd/hisweep -pareto -duration 10 -bounds 0.5,0.65,0.8 -paretocsv /tmp/hiopt-pareto-a.csv > /dev/null
	$(GO) run ./cmd/hisweep -pareto -duration 10 -bounds 0.5,0.65,0.8 -paretocsv /tmp/hiopt-pareto-b.csv > /dev/null
	cmp /tmp/hiopt-pareto-a.csv /tmp/hiopt-pareto-b.csv
	@echo "pareto-smoke: warm front matches cold, repeated CSV byte-identical"

# The daemon gate: assemble the real hiserve stack and run three
# concurrent personalized requests — one cancelled mid-stream — then
# assert a byte-identical repeat response and a clean shutdown, under
# the race detector (DESIGN.md §16).
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke|TestCancelMidStream' -v ./internal/serve/

# A fast end-to-end robustness pass: one configuration evaluated against
# its 1-node-failure family at quick fidelity.
robust-smoke:
	$(GO) run ./cmd/hisim -locs 0,1,3,6 -routing star -mac tdma -tx 0 -duration 60 -faults knode=1

# The warm-started MILP kernel gate: the warm-vs-cold equivalence property
# tests on BOTH kernels (randomized bound/cut mutations in internal/lp,
# pool enumeration across pruning cuts in internal/milp), the presolve
# pool-preservation property, the parallel-dive determinism tests under
# the race detector, plus the paper-chain pivot-budget check in
# internal/core.
milp-smoke:
	$(GO) test -race -count=1 ./internal/lp/ ./internal/lp/presolve/ ./internal/milp/
	$(GO) test -race -count=1 -run 'TestParallelPool' -v ./internal/milp/
	$(GO) test -count=1 -run 'TestPaperChainWarmMatchesCold|TestWarmPoolDeepChainComplete|TestRunWarmMatchesColdMILP|TestPaperChainKernelModes' -v ./internal/core/
