// Package hiopt is an open-source reproduction of "Optimized Design of a
// Human Intranet Network" (Moin, Nuzzo, Sangiovanni-Vincentelli, Rabaey,
// DAC 2017): a design-space-exploration framework for wireless body area
// networks that couples a MILP candidate generator with an accurate
// discrete-event network simulator.
//
// The package is a façade over the implementation packages:
//
//   - design-space definition and the Eq. (9) analytic power model
//     (internal/design),
//   - the Algorithm 1 optimizer (internal/core) over a from-scratch
//     simplex/branch-and-bound MILP stack (internal/lp, internal/milp),
//   - the Castalia-equivalent WBAN simulator (internal/netsim and the
//     layer packages under it),
//   - the exhaustive and simulated-annealing baselines
//     (internal/exhaustive, internal/anneal).
//
// Quick start:
//
//	problem := hiopt.NewPaperProblem(0.90) // PDR ≥ 90%
//	outcome, err := hiopt.Optimize(problem, hiopt.OptimizerOptions{})
//	if err != nil { ... }
//	fmt.Println(outcome.Best.Point, outcome.Best.NLTDays)
//
// See the examples/ directory for runnable scenarios and EXPERIMENTS.md
// for the paper-versus-measured record of every table and figure.
package hiopt

import (
	"io"

	"hiopt/internal/anneal"
	"hiopt/internal/body"
	"hiopt/internal/channel"
	"hiopt/internal/core"
	"hiopt/internal/design"
	"hiopt/internal/engine"
	"hiopt/internal/exhaustive"
	"hiopt/internal/fault"
	"hiopt/internal/netsim"
	"hiopt/internal/phys"
	"hiopt/internal/radio"
)

// Core design-space and optimization types.
type (
	// Problem is the optimal mapping problem P of Eq. (8): design space,
	// constraints, reliability bound, and evaluation settings.
	Problem = design.Problem
	// Point is one design-space point (ν, χ).
	Point = design.Point
	// Constraints are the topological requirements r_T.
	Constraints = design.Constraints
	// OptimizerOptions tune Algorithm 1.
	OptimizerOptions = core.Options
	// Outcome is an Algorithm 1 result.
	Outcome = core.Outcome
	// Candidate is one simulated configuration with metrics.
	Candidate = core.Candidate
	// RobustOptions configure worst-case screening against a fault-scenario
	// family inside Algorithm 1 (OptimizerOptions.Robust).
	RobustOptions = core.RobustOptions
)

// Fault-injection and robust-evaluation types.
type (
	// FaultScenario is one deterministic fault schedule (node failures,
	// outages, link shadowing bursts, battery drains) attachable to a
	// SimConfig; the zero value injects nothing.
	FaultScenario = fault.Scenario
	// ScenarioGen derives deterministic fault-scenario families (k-node
	// failures, coordinator outages, sampled link bursts) from a seed.
	ScenarioGen = fault.ScenarioGen
	// RobustResult is a configuration's measured envelope across a
	// scenario family: nominal, per-scenario, and worst-case metrics.
	RobustResult = netsim.RobustResult
)

// Simulator-facing types.
type (
	// SimConfig fully describes one simulated network.
	SimConfig = netsim.Config
	// SimResult carries the measured metrics of a run.
	SimResult = netsim.Result
	// ChannelParams parametrizes the body-channel model.
	ChannelParams = channel.Params
	// RadioSpec is a PHY component library entry.
	RadioSpec = radio.Spec
	// BodyLocation is a candidate on-body node placement.
	BodyLocation = body.Location
)

// Evaluation-engine types.
type (
	// Engine is the unified evaluation service behind every search layer:
	// a fixed worker pool over reusable simulation kernels with a
	// lock-striped (point, fidelity, scenario) result cache, in-flight
	// deduplication, and an optional persistent tier
	// (Engine.AttachCacheFile / SaveCache / LoadCache). Share one engine
	// across Optimize, ExhaustiveSearch, and Anneal (via their
	// Options.Engine fields) to share its cache.
	Engine = engine.Engine
	// EngineStats are an engine's observability counters (submitted,
	// simulated, cache hits, dedup hits, disk hits, per-fidelity
	// simulated seconds).
	EngineStats = engine.Stats
)

// NewEngine builds an evaluation engine with the given worker-pool size
// (0 selects GOMAXPROCS; negative counts are rejected).
func NewEngine(workers int) (*Engine, error) { return engine.New(workers) }

// Baseline types.
type (
	// ExhaustiveResult is a brute-force search outcome.
	ExhaustiveResult = exhaustive.Result
	// ExhaustiveOptions tune the brute-force search.
	ExhaustiveOptions = exhaustive.Options
	// AnnealOptions tune the simulated-annealing baseline.
	AnnealOptions = anneal.Options
	// AnnealOutcome is a simulated-annealing result.
	AnnealOutcome = anneal.Outcome
)

// Protocol selections (the paper's P_MAC and P_rt binaries).
const (
	CSMA = netsim.CSMA
	TDMA = netsim.TDMA
	Star = netsim.Star
	Mesh = netsim.Mesh
)

// NewPaperProblem returns the paper's §4.1 design example with the given
// reliability bound PDRMin in [0, 1]: ten candidate body locations, chest
// coordinator, CC2650 radio, 100-byte packets at 10 packets/s, CR2032
// batteries, T_sim = 600 s averaged over 3 runs.
func NewPaperProblem(pdrMin float64) *Problem {
	return design.PaperProblem(pdrMin)
}

// Optimize runs the paper's Algorithm 1 — the MILP-plus-simulation
// coordination loop — on a problem.
func Optimize(pr *Problem, opts OptimizerOptions) (*Outcome, error) {
	return core.NewOptimizer(pr, opts).Run()
}

// ParetoPoint is one point of the reliability–lifetime trade-off front.
type ParetoPoint = core.ParetoPoint

// ParetoFront sweeps Algorithm 1 across reliability bounds (nil selects
// 50%..100%) and returns the lifetime-versus-reliability trade-off curve,
// sharing one simulation cache across the sweep.
func ParetoFront(pr *Problem, bounds []float64, opts OptimizerOptions) ([]ParetoPoint, error) {
	return core.ParetoFront(pr, bounds, opts)
}

// Simulate runs a single discrete-event simulation of a network
// configuration with the given master seed.
func Simulate(cfg SimConfig, seed uint64) (*SimResult, error) {
	return netsim.Run(cfg, seed)
}

// SimulateAveraged runs a configuration `runs` times with derived seeds
// and averages the metrics, as the paper does (3 runs).
func SimulateAveraged(cfg SimConfig, runs int, seed uint64) (*SimResult, error) {
	return netsim.RunAveraged(cfg, runs, seed)
}

// ParseFaultScenario builds a fault scenario from its textual spec, e.g.
// "fail:6@150,out:0@100-200,link:1-5@50-250,drain:3x1e6".
func ParseFaultScenario(spec string) (*FaultScenario, error) {
	return fault.Parse(spec)
}

// SimulateRobust measures a configuration under every scenario of a fault
// family (plus the fault-free nominal run) with common random numbers and
// returns the per-scenario metrics and worst-case envelope.
func SimulateRobust(cfg SimConfig, runs int, seed uint64, scenarios []*FaultScenario) (*RobustResult, error) {
	return netsim.EvaluateRobust(cfg, runs, seed, scenarios)
}

// DefaultSimConfig assembles the design-example configuration around a
// topology (body-location indices) and protocol choices; txMode indexes
// the radio's power modes (0 = lowest).
func DefaultSimConfig(locations []int, mac netsim.MACKind, routing netsim.RoutingKind, txMode int) SimConfig {
	return netsim.DefaultConfig(locations, mac, routing, txMode)
}

// ExhaustiveSearch simulates every feasible configuration of the problem
// (the baseline behind the paper's simulation-reduction claim).
func ExhaustiveSearch(pr *Problem, opts ExhaustiveOptions) (*ExhaustiveResult, error) {
	return exhaustive.Search(pr, opts)
}

// Anneal runs the simulated-annealing baseline (the paper's
// general-purpose comparison method [23]).
func Anneal(pr *Problem, opts AnnealOptions) (*AnnealOutcome, error) {
	return anneal.New(pr, opts).Run()
}

// RadioLibrary returns the PHY component library (the paper's CC2650
// first).
func RadioLibrary() []RadioSpec { return radio.Library() }

// BodyLocations returns the ten candidate placements of the design
// example in paper index order.
func BodyLocations() []BodyLocation { return body.Default() }

// DefaultChannelParams returns the calibrated body-channel parameters.
func DefaultChannelParams() ChannelParams { return channel.DefaultParams() }

// LoadChannelMatrixCSV parses a measured mean path-loss matrix (dB, CSV,
// one row per body location) for use as SimConfig.ChannelMatrix — the
// hook for replacing the synthetic channel with real campaign data.
func LoadChannelMatrixCSV(r io.Reader) ([][]phys.DB, error) {
	return channel.LoadMatrixCSV(r)
}
