// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1RadioLibrary   — T1 (Table 1)
//	BenchmarkFig1ChannelMatrix    — F1 (Figure 1 substrate)
//	BenchmarkFig3FeasibleScatter  — F3 (Figure 3)
//	BenchmarkOptimaPerPDRmin      — R1 (§4.2 optima sequence)
//	BenchmarkAlg1VsExhaustive     — R2 (87% simulation reduction)
//	BenchmarkAlg1VsSimAnneal      — R3 (3× vs simulated annealing)
//	BenchmarkAblation*            — A1–A4 (DESIGN.md ablations)
//
// Experiment benchmarks run at a reduced fidelity (T_sim = 20 s, 1 run) so
// the whole suite completes in minutes on one core; the cmd/hibench tool
// reruns the same experiments at any fidelity including the paper's
// 600 s × 3 runs (-paper). Shape metrics (reductions, speedups, spans)
// are attached to the benchmark output via ReportMetric.
//
// Micro-benchmarks at the bottom measure the substrates themselves
// (simplex pivots, MILP pooling, DES event throughput, channel sampling).
package hiopt_test

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"hiopt/internal/body"
	"hiopt/internal/channel"
	"hiopt/internal/core"
	"hiopt/internal/des"
	"hiopt/internal/design"
	"hiopt/internal/engine"
	"hiopt/internal/experiments"
	"hiopt/internal/fault"
	"hiopt/internal/linexpr"
	"hiopt/internal/lp"
	"hiopt/internal/milp"
	"hiopt/internal/netsim"
	"hiopt/internal/phys"
	"hiopt/internal/radio"
	"hiopt/internal/rng"
)

// benchFid is the reduced fidelity used by the experiment benchmarks.
var benchFid = experiments.Fidelity{Duration: 20, Runs: 1, Seed: 1}

// sharedSuite caches the exhaustive sweep and the Algorithm 1 runs across
// the experiment benchmarks, exactly like one cmd/hibench invocation
// does; each benchmark therefore times the *incremental* cost of its
// artifact. Micro-benchmarks below do not use it.
var sharedSuite = experiments.NewSuite(benchFid, io.Discard)

func newSuite() *experiments.Suite { return sharedSuite }

// benchPDRMins is the bound set used by the R-series benchmarks — the
// endpoints and the paper's crossover region.
var benchPDRMins = []float64{0.5, 0.9, 1.0}

// --- T1 ---

func BenchmarkTable1RadioLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lib := radio.Library()
		if lib[0].Name != "TI CC2650" || len(lib[0].TxModes) != 3 {
			b.Fatal("radio library lost the paper's Table 1 entry")
		}
		newSuite().Table1()
	}
}

// --- F1 ---

func BenchmarkFig1ChannelMatrix(b *testing.B) {
	locs := body.Default()
	for i := 0; i < b.N; i++ {
		ch := channel.New(locs, channel.DefaultParams(), rng.NewSource(1))
		if ch.MeanPL(0, 3) < 40 {
			b.Fatal("implausible channel matrix")
		}
	}
}

// --- F3 ---

func BenchmarkFig3FeasibleScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		rows, err := s.Fig3("")
		if err != nil {
			b.Fatal(err)
		}
		minPDR, maxPDR := 1.0, 0.0
		minNLT, maxNLT := math.Inf(1), 0.0
		for _, r := range rows {
			minPDR = math.Min(minPDR, r.PDR)
			maxPDR = math.Max(maxPDR, r.PDR)
			minNLT = math.Min(minNLT, r.NLTDays)
			maxNLT = math.Max(maxNLT, r.NLTDays)
		}
		// Paper shape: PDR spans (almost) the whole range; NLT spans
		// days to a month-plus.
		if minPDR > 0.6 || maxPDR < 0.99 {
			b.Fatalf("PDR span [%v, %v] does not match Fig. 3", minPDR, maxPDR)
		}
		if minNLT > 8 || maxNLT < 28 {
			b.Fatalf("NLT span [%v, %v] days does not match Fig. 3", minNLT, maxNLT)
		}
		b.ReportMetric(float64(len(rows)), "configs")
		b.ReportMetric(minNLT, "minNLT_days")
		b.ReportMetric(maxNLT, "maxNLT_days")
	}
}

// --- R1 ---

func BenchmarkOptimaPerPDRmin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		rows, err := s.R1(benchPDRMins)
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: every bound feasible; lifetime non-increasing and
		// power non-decreasing as the bound tightens; the 100% answer is
		// a mesh.
		for j, r := range rows {
			if r.Best == nil {
				b.Fatalf("PDRmin=%v infeasible", r.PDRMin)
			}
			if j > 0 && rows[j].Best.PowerMW < rows[j-1].Best.PowerMW-1e-9 {
				b.Fatalf("optimum power decreased when tightening the bound at %v", r.PDRMin)
			}
		}
		last := rows[len(rows)-1]
		if last.Best.Point.Routing != netsim.Mesh {
			b.Fatalf("PDRmin=100%% selected %v, paper selects a mesh", last.Best.Point)
		}
		first := rows[0]
		if first.Best.Point.Routing != netsim.Star || first.Best.Point.TxMode == 2 {
			b.Fatalf("PDRmin=50%% selected %v, paper selects a low-power star", first.Best.Point)
		}
		b.ReportMetric(first.Best.NLTDays, "NLT50_days")
		b.ReportMetric(last.Best.NLTDays, "NLT100_days")
	}
}

// --- R2 ---

func BenchmarkAlg1VsExhaustive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		res, err := s.R2(benchPDRMins)
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: a large mean reduction in simulations (87% in the
		// paper; the band depends on fidelity and the PDRmin mix).
		if res.MeanReduction < 0.5 {
			b.Fatalf("mean reduction %.1f%% too small vs the paper's 87%%", res.MeanReduction*100)
		}
		for _, r := range res.Rows {
			if !r.OptimumMatches {
				b.Logf("note: optimum class differs at PDRmin=%v (noise at bench fidelity)", r.PDRMin)
			}
		}
		b.ReportMetric(res.MeanReduction*100, "reduction_%")
	}
}

// --- R3 ---

func BenchmarkAlg1VsSimAnneal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		res, err := s.R3(benchPDRMins, 0)
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: Algorithm 1 converges with fewer simulations than
		// SA needs to reach the same answer quality (paper: ~3×). Our SA
		// baseline is deliberately strong (tuned schedule + caching) and
		// can locally win at the 100% bound where it skips the
		// optimality proof — see EXPERIMENTS.md R3 — so the hard floor
		// here is loose; the mean must still not collapse.
		if res.MeanSpeedup < 0.7 {
			b.Fatalf("mean speedup %.2fx: Algorithm 1 broadly slower than annealing", res.MeanSpeedup)
		}
		if res.MeanSpeedup < 1 {
			b.Logf("note: strong-SA baseline won on this fidelity mix (%.2fx)", res.MeanSpeedup)
		}
		b.ReportMetric(res.MeanSpeedup, "speedup_x")
	}
}

// --- A1–A4 ---

func BenchmarkAblationPoolSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("pool ablation incomplete")
		}
		b.ReportMetric(float64(rows[len(rows)-1].Evaluations), "evals_unlimited")
		b.ReportMetric(float64(rows[0].Evaluations), "evals_pool1")
	}
}

func BenchmarkAblationAlphaBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newSuite().A2()
		if err != nil {
			b.Fatal(err)
		}
		if res.WithAlpha > res.WithoutAlpha {
			b.Fatalf("α bound increased work: %d vs %d", res.WithAlpha, res.WithoutAlpha)
		}
		b.ReportMetric(float64(res.WithAlpha), "evals_with")
		b.ReportMetric(float64(res.WithoutAlpha), "evals_without")
	}
}

func BenchmarkAblationNhops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A3()
		if err != nil {
			b.Fatal(err)
		}
		// More hops must cost strictly more power.
		for j := 1; j < len(rows); j++ {
			if rows[j].PowerMW <= rows[j-1].PowerMW {
				b.Fatalf("NHops=%d power %v not above NHops=%d power %v",
					rows[j].NHops, rows[j].PowerMW, rows[j-1].NHops, rows[j-1].PowerMW)
			}
		}
		b.ReportMetric(rows[1].PDR*100, "pdr_h2_%")
	}
}

func BenchmarkAblationTDMASlot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A4()
		if err != nil {
			b.Fatal(err)
		}
		// The widest slot throttles relay capacity: drops appear and PDR
		// falls well below the 1 ms setting.
		last := rows[len(rows)-1]
		ref := rows[1]
		if last.Drops == 0 || last.PDR >= ref.PDR {
			b.Fatalf("4 ms slots should overflow relay buffers (drops=%d pdr=%v vs %v)",
				last.Drops, last.PDR, ref.PDR)
		}
		b.ReportMetric(float64(last.Drops), "drops_4ms")
	}
}

// --- extension studies (A5–A8, PF) ---

func BenchmarkExtRadioSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("radio sweep incomplete")
		}
		// The CC2650's best-in-library RX power must buy the longest
		// lifetime at equal reliability.
		for _, r := range rows[1:] {
			if r.Best != nil && rows[0].Best != nil && r.NLTDays > rows[0].NLTDays {
				b.Fatalf("%s outlived the CC2650 (%v > %v days) despite worse RX power",
					r.Radio, r.NLTDays, rows[0].NLTDays)
			}
		}
	}
}

func BenchmarkExtLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeanLatency*1000, "csma_star_ms")
		b.ReportMetric(rows[1].MeanLatency*1000, "tdma_star_ms")
	}
}

func BenchmarkExtFailureRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A7()
		if err != nil {
			b.Fatal(err)
		}
		starLoss := rows[0].HealthyPDR - rows[0].FailedPDR
		meshLoss := rows[2].HealthyPDR - rows[2].FailedPDR
		// Robust shape checks (the star-vs-mesh loss *margin* is only a
		// couple of points and drowns in noise at bench fidelity): both
		// failures must hurt, and the surviving mesh must stay more
		// reliable than the surviving star.
		if starLoss <= 0 || meshLoss <= 0 {
			b.Fatalf("failures did not reduce PDR: star %v, mesh %v", starLoss, meshLoss)
		}
		if rows[2].FailedPDR <= rows[0].FailedPDR {
			b.Fatalf("post-failure mesh PDR %v not above post-failure star PDR %v",
				rows[2].FailedPDR, rows[0].FailedPDR)
		}
		b.ReportMetric(starLoss*100, "star_loss_%")
		b.ReportMetric(meshLoss*100, "mesh_loss_%")
	}
}

func BenchmarkExtIdleListening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newSuite().A8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DutyCycledNLTDays, "duty_days")
		b.ReportMetric(res.IdleListenNLTDays, "idle_days")
	}
}

func BenchmarkExtTwoStageScreening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newSuite().A9()
		if err != nil {
			b.Fatal(err)
		}
		if res.TwoStageSeconds >= res.SingleSeconds {
			b.Fatal("screening saved no simulated time")
		}
		if !res.SameClass {
			b.Log("note: screening changed the optimum class (noise at bench fidelity)")
		}
		b.ReportMetric(100*(1-res.TwoStageSeconds/res.SingleSeconds), "saving_%")
	}
}

func BenchmarkExtCSMAAccessModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A10()
		if err != nil {
			b.Fatal(err)
		}
		// Probabilistic deferral must decorrelate the flood bursts:
		// p-persistent collides distinctly less than greedy 1-persistent.
		if rows[2].Collisions >= rows[1].Collisions {
			b.Fatalf("p-persistent collisions %d not below 1-persistent %d",
				rows[2].Collisions, rows[1].Collisions)
		}
		b.ReportMetric(float64(rows[1].Collisions), "coll_1persist")
		b.ReportMetric(float64(rows[2].Collisions), "coll_ppersist")
	}
}

func BenchmarkExtBufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newSuite().A11()
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		if first.Drops <= last.Drops || first.PDR >= last.PDR {
			b.Fatalf("larger buffers should absorb relay bursts: %+v vs %+v", first, last)
		}
		b.ReportMetric(first.PDR*100, "pdr_cap2_%")
		b.ReportMetric(last.PDR*100, "pdr_cap64_%")
	}
}

func BenchmarkExtParetoFront(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The front sweep builds its own optimizer (its point is the
		// shared per-sweep cache), so keep to the cheap bounds here; the
		// 100% bound is exercised by BenchmarkOptimaPerPDRmin.
		front, err := newSuite().PF([]float64{0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(front); j++ {
			if front[j].Best != nil && front[j-1].Best != nil &&
				front[j].Best.NLTDays > front[j-1].Best.NLTDays+1e-9 {
				b.Fatal("Pareto front not monotone")
			}
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSimplexSolve(b *testing.B) {
	// A representative LP: the root relaxation of the design example's
	// MILP (≈40 variables, ≈70 rows after linearization).
	pr := design.PaperProblem(0.9)
	m := linexpr.NewModel()
	ids := make([]linexpr.VarID, 30)
	for i := range ids {
		ids[i] = m.NewVar("", linexpr.Continuous, 0, 10)
	}
	g := rng.NewSource(5).Stream("bench")
	for r := 0; r < 40; r++ {
		e := linexpr.Expr{}
		for _, id := range ids {
			e = e.PlusTerm(id, g.Uniform(-2, 2))
		}
		m.Add("", e, linexpr.LE, g.Uniform(1, 20))
	}
	obj := linexpr.Expr{}
	for _, id := range ids {
		obj = obj.PlusTerm(id, g.Uniform(-1, 1))
	}
	m.SetObjective(obj, false)
	c := m.Compile()
	_ = pr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILPPoolFirstClass(b *testing.B) {
	// The MILP oracle call of Algorithm 1's first iteration: enumerate
	// the 16-member cheapest power class.
	pr := design.PaperProblem(0.9)
	for i := 0; i < b.N; i++ {
		out, err := core.FirstPool(pr)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 16 {
			b.Fatalf("pool size %d, want 16", len(out))
		}
	}
}

func BenchmarkDESStarSecond(b *testing.B) {
	// Simulate one second of the 4-node star at full traffic; report
	// event throughput.
	cfg := netsim.DefaultConfig([]int{0, 1, 3, 6}, netsim.TDMA, netsim.Star, 2)
	cfg.Duration = 1
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := netsim.Run(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkDESMeshFloodSecond(b *testing.B) {
	cfg := netsim.DefaultConfig([]int{0, 1, 3, 5, 7}, netsim.TDMA, netsim.Mesh, 2)
	cfg.Duration = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelSample(b *testing.B) {
	ch := channel.New(body.Default(), channel.DefaultParams(), rng.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.PathLossAt(float64(i)*1e-4, 0, 3)
	}
}

func BenchmarkDESSteadyState(b *testing.B) {
	// A self-rescheduling event chain at 1 kHz: after warm-up every
	// Schedule is served from the kernel's free list, so steady state
	// must report 0 allocs/op (1000 events per op).
	sim := des.New()
	var tick func()
	tick = func() { sim.Schedule(0.001, tick) }
	sim.Schedule(0.001, tick)
	sim.Run(1) // warm-up: populate the event pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(float64(i) + 2)
	}
	b.ReportMetric(float64(sim.Processed())/float64(b.N), "events/op")
}

func BenchmarkNetsimOneSecond(b *testing.B) {
	// One simulated second per op of the busiest protocol corner (5-node
	// CSMA mesh), stepped on a single long-lived network so the pooled
	// steady state is visible: 0 allocs/op after warm-up.
	cfg := netsim.DefaultConfig([]int{0, 1, 3, 5, 7}, netsim.CSMA, netsim.Mesh, 2)
	cfg.Duration = 1 << 20 // effectively unbounded for a stepped run
	n, err := netsim.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	sim := n.Simulator()
	sim.Run(2) // warm-up: fills the event/transmission pools
	start := sim.Processed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(float64(i) + 3)
	}
	b.ReportMetric(float64(sim.Processed()-start)/float64(b.N), "events/op")
}

func BenchmarkChannelPathLossAt(b *testing.B) {
	// One transmission's worth of receptions per op: every receiver pair
	// advances to the same instant, exercising the flat pair-index lookup
	// and the shared exp(−Δt/τ) memoization. Must report 0 allocs/op.
	locs := body.Default()
	ch := channel.New(locs, channel.DefaultParams(), rng.NewSource(1))
	var sink phys.DB
	t := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += 1e-3
		for j := 1; j < len(locs); j++ {
			sink += ch.PathLossAt(t, 0, j)
		}
	}
	benchSinkDB = sink
}

// benchSinkDB defeats dead-code elimination of the PathLossAt benchmark.
var benchSinkDB phys.DB

func BenchmarkRobustEval(b *testing.B) {
	// One 10-second robust evaluation per op: the 4-node star against its
	// 1-node-failure family (3 scenarios + nominal, common random
	// numbers) on a recycled evaluator — the unit of work the optimizer's
	// robust screening pays per nominally feasible candidate.
	cfg := netsim.DefaultConfig([]int{0, 1, 3, 6}, netsim.TDMA, netsim.Star, 2)
	cfg.Duration = 10
	scenarios := fault.ScenarioGen{Seed: 1}.KNodeFailures(cfg.Locations, cfg.CoordinatorLoc, 1, cfg.Duration)
	ev := netsim.NewEvaluator()
	if _, err := ev.EvaluateRobust(cfg, 1, 1, scenarios); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateRobust(cfg, 1, 1, scenarios); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(scenarios)+1), "sims/op")
}

// engineBatchRequests builds the engine-dispatched equivalent of
// BenchmarkRobustEval's work: the 4-node star's nominal run plus its
// 1-node-failure family, as one batch (keyed for the cache-hit variant).
func engineBatchRequests(keyed bool) []engine.Request {
	cfg := netsim.DefaultConfig([]int{0, 1, 3, 6}, netsim.TDMA, netsim.Star, 2)
	cfg.Duration = 10
	scenarios := fault.ScenarioGen{Seed: 1}.KNodeFailures(cfg.Locations, cfg.CoordinatorLoc, 1, cfg.Duration)
	reqs := []engine.Request{{Cfg: cfg, Runs: 1, Seed: 1}}
	for _, sc := range scenarios {
		c := cfg
		c.Scenario = sc
		reqs = append(reqs, engine.Request{Cfg: c, Runs: 1, Seed: 1})
	}
	if keyed {
		pk := design.Point{Topology: 1<<0 | 1<<1 | 1<<3 | 1<<6, TxMode: 2,
			MAC: netsim.TDMA, Routing: netsim.Star}.Key()
		reqs[0].Key = engine.PointKey(pk)
		for i, sc := range scenarios {
			reqs[i+1].Key = engine.ScenarioKey(pk, sc.Key())
		}
	}
	return reqs
}

func BenchmarkEngineBatch(b *testing.B) {
	// BenchmarkRobustEval's family dispatched through the evaluation
	// engine's worker pool, uncached (every op simulates afresh): ns/op vs
	// BenchmarkRobustEval is the engine's dispatch overhead, which must
	// stay negligible against the simulation itself.
	eng, err := engine.New(1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := engineBatchRequests(false)
	if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "sims/op")
}

func BenchmarkEngineCacheHit(b *testing.B) {
	// The same batch, keyed and pre-warmed: every op resolves from the
	// unified cache without touching a simulator. EvaluateBatchInto with
	// a reused results slice exercises the all-hits fast path — 0
	// allocs/op, pinned by the hibench -cmp allocation gate.
	eng, err := engine.New(1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := engineBatchRequests(true)
	results := make([]*netsim.Result, len(reqs))
	if err := eng.EvaluateBatchInto(results, reqs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.EvaluateBatchInto(results, reqs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "hits/op")
}

// contendHits hammers the engine's cache-hit path from g goroutines, each
// performing hitsPerWorker single-request lookups over the keyed request
// set with per-goroutine phase offsets (colliding keys, distinct access
// order) — the access pattern of cache-heavy concurrent batches.
func contendHits(b *testing.B, eng *engine.Engine, reqs []engine.Request, g, hitsPerWorker int) {
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < hitsPerWorker; i++ {
				if _, err := eng.Evaluate(reqs[(w+i)%len(reqs)]); err != nil {
					b.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkEngineShardContention(b *testing.B) {
	// GOMAXPROCS goroutines hammering cache hits on the lock-striped
	// cache. The same workload against a single-stripe engine (the old
	// single-mutex layout, NewSharded(…, 1)) is timed before the
	// measured loop; speedup_vs_mutex1 is the contended-hit throughput
	// ratio — ≈1 on a 1-CPU host where goroutines serialize anyway, and
	// growing with cores as stripes stop the lock convoy.
	const hitsPerWorker = 1000
	g := runtime.GOMAXPROCS(0)
	reqs := engineBatchRequests(true)

	m1, err := engine.NewSharded(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m1.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	contendHits(b, m1, reqs, g, hitsPerWorker) // warm up the baseline
	t0 := time.Now()
	const baseRounds = 3
	for i := 0; i < baseRounds; i++ {
		contendHits(b, m1, reqs, g, hitsPerWorker)
	}
	base := time.Since(t0).Seconds() / baseRounds

	sharded, err := engine.NewSharded(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sharded.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	contendHits(b, sharded, reqs, g, hitsPerWorker)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contendHits(b, sharded, reqs, g, hitsPerWorker)
	}
	b.StopTimer()
	per := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(base/per, "speedup_vs_mutex1")
	b.ReportMetric(float64(g*hitsPerWorker), "hits/op")
	b.ReportMetric(float64(g), "goroutines")
}

func BenchmarkEngineDiskWarm(b *testing.B) {
	// The warm-restart path end to end: a cold engine evaluates the keyed
	// batch once and saves it; every op then builds a fresh engine, loads
	// the cache file, and answers the whole batch from the persisted tier
	// without a single fresh simulation.
	path := filepath.Join(b.TempDir(), "cache.bin")
	sig := engine.ContextSig(10, 1, 1)
	cold, err := engine.New(1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := engineBatchRequests(true)
	if _, err := cold.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := cold.SaveCache(path, sig); err != nil {
		b.Fatal(err)
	}
	results := make([]*netsim.Result, len(reqs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := engine.New(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := warm.LoadCache(path, sig); err != nil {
			b.Fatal(err)
		}
		if err := warm.EvaluateBatchInto(results, reqs, nil); err != nil {
			b.Fatal(err)
		}
		if st := warm.Stats(); st.Simulated != 0 || st.DiskHits != int64(len(reqs)) {
			b.Fatalf("disk-warm op simulated %d / %d disk hits, want 0 / %d", st.Simulated, st.DiskHits, len(reqs))
		}
	}
	b.ReportMetric(float64(len(reqs)), "disk_hits/op")
}

// engineRepBatchRequests builds 16 distinct configurations, each
// requesting 8 replications of a 2-second horizon — the workload of the
// replication-granularity scheduler benchmarks.
func engineRepBatchRequests() []engine.Request {
	locSets := [][]int{{0, 1, 3, 6}, {0, 2, 4, 6}, {0, 1, 5, 7}, {0, 3, 6, 9}}
	var reqs []engine.Request
	for _, locs := range locSets {
		for _, m := range []netsim.MACKind{netsim.CSMA, netsim.TDMA} {
			for _, rt := range []netsim.RoutingKind{netsim.Star, netsim.Mesh} {
				cfg := netsim.DefaultConfig(locs, m, rt, 2)
				cfg.Duration = 2
				reqs = append(reqs, engine.Request{Cfg: cfg, Runs: 8, Seed: 1})
			}
		}
	}
	return reqs
}

func BenchmarkEngineRepsParallel(b *testing.B) {
	// 16 points × 8 replications at Workers = GOMAXPROCS, scheduled at
	// replication granularity (each replication is its own sub-task, so a
	// single point's 8 replications spread across the pool). The
	// sequential-replication baseline — one evaluator, replications in
	// seed order — is timed inside the benchmark; speedup_vs_sequential
	// records the wall-clock ratio: ≈1 on a single-core box, approaching
	// min(GOMAXPROCS, reps) with cores.
	reqs := engineRepBatchRequests()
	ev := netsim.NewEvaluator()
	for _, r := range reqs { // warm the allocator before timing the baseline
		if _, err := ev.RunAveraged(r.Cfg, r.Runs, r.Seed); err != nil {
			b.Fatal(err)
		}
	}
	t0 := time.Now()
	for _, r := range reqs {
		if _, err := ev.RunAveraged(r.Cfg, r.Runs, r.Seed); err != nil {
			b.Fatal(err)
		}
	}
	seq := time.Since(t0)
	eng, err := engine.New(0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(seq.Seconds()/par, "speedup_vs_sequential")
	b.ReportMetric(float64(len(reqs)*8), "reps/op")
}

func BenchmarkEngineAdaptiveScreen(b *testing.B) {
	// The screening-style adaptive workload: the same 16 points with the
	// 8×2 s budget split into confidence-gated blocks against a bound
	// every candidate is decisively clear of, so the gate stops most
	// replication budgets early. reps_saved/op and saved_frac record the
	// avoided work (the requests are keyless, so every op simulates
	// afresh — a warm cache would measure nothing).
	reqs := engineRepBatchRequests()
	gate := &netsim.Gate{PDRMin: 0.5, Margin: 0.05, Confidence: 0.9}
	for i := range reqs {
		reqs[i].Adaptive = gate
	}
	eng, err := engine.New(0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
		b.Fatal(err)
	}
	start := eng.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateBatch(reqs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := eng.Stats().Sub(start)
	b.ReportMetric(float64(d.RepsSaved)/float64(b.N), "reps_saved/op")
	if total := d.SimSeconds() + d.SavedSeconds; total > 0 {
		b.ReportMetric(d.SavedSeconds/total, "saved_frac")
	}
}

// --- warm MILP kernel ---

// milpPoolChain drives the first three Algorithm 1 oracle iterations —
// SolvePool, prune cut, SolvePool — on the paper problem's MILP, either
// on a persistent warm State or on the clone-based cold path, and
// returns total simplex pivots and branch-and-bound nodes.
func milpPoolChain(b *testing.B, warm bool) (pivots, nodes int) {
	work, obj, err := core.CompileMILP(design.PaperProblem(0.9))
	if err != nil {
		b.Fatal(err)
	}
	var st *milp.State
	if warm {
		st = milp.NewState(work, milp.Options{})
	}
	for iter := 0; iter < 3; iter++ {
		var pool []milp.PoolSolution
		var agg *milp.Solution
		var err error
		if warm {
			pool, agg, err = st.SolvePool(0, 1e-6)
		} else {
			pool, agg, err = milp.SolvePool(work, milp.Options{}, 0, 1e-6)
		}
		if err != nil {
			b.Fatal(err)
		}
		if agg.Status != milp.Optimal || len(pool) == 0 {
			b.Fatalf("iter %d: status %v, %d members", iter, agg.Status, len(pool))
		}
		pivots += agg.LPIterations
		nodes += agg.Nodes
		work.AddExprRow(fmt.Sprintf("prune_%d", iter), obj, linexpr.GE, agg.Objective+1e-4)
	}
	return pivots, nodes
}

// BenchmarkMILPSolvePool measures the full pooled-MILP chain of Algorithm
// 1's first three iterations. The warm sub-benchmark keeps one persistent
// solver state across iterations (dual-simplex re-solves, bound-diff
// nodes, live no-good cuts); cold re-clones and re-solves from scratch
// like the pre-warm-kernel code path. pivots/op is the acceptance metric:
// warm must stay ≥2x below cold.
func BenchmarkMILPSolvePool(b *testing.B) {
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var pivots, nodes int
			for i := 0; i < b.N; i++ {
				p, n := milpPoolChain(b, mode.warm)
				pivots += p
				nodes += n
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		})
	}
}

// BenchmarkMILPCutResolve measures the LP unit the warm kernel exists
// for: a pruning cut's right-hand side moves and the paper problem's
// root relaxation re-solves from the incumbent basis instead of from
// scratch. One op is a tighten + re-solve followed by a loosen +
// re-solve, so the solver returns to its starting state every op.
func BenchmarkMILPCutResolve(b *testing.B) {
	work, obj, err := core.CompileMILP(design.PaperProblem(0.9))
	if err != nil {
		b.Fatal(err)
	}
	work.AddExprRow("prune", obj, linexpr.GE, 0) // loose: power is positive
	row := len(work.Rows) - 1
	sv, err := lp.NewSolver(work)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sv.Solve()
	if err != nil || s.Status != lp.Optimal {
		b.Fatalf("root solve: %v %v", s.Status, err)
	}
	tight := s.Objective + 0.01
	s0 := sv.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.SetRowRHS(row, tight)
		if r, err := sv.Solve(); err != nil || r.Status != lp.Optimal {
			b.Fatalf("tight re-solve: %v %v", r.Status, err)
		}
		sv.SetRowRHS(row, 0)
		if r, err := sv.Solve(); err != nil || r.Status != lp.Optimal {
			b.Fatalf("loose re-solve: %v %v", r.Status, err)
		}
	}
	b.StopTimer()
	d := sv.Stats()
	b.ReportMetric(float64(d.Pivots-s0.Pivots)/float64(b.N), "pivots/op")
	if cold := d.ColdSolves - s0.ColdSolves; cold != 0 {
		b.Fatalf("%d cold rebuilds in the warm re-solve loop", cold)
	}
}

func BenchmarkMILPKnapsack(b *testing.B) {
	m := linexpr.NewModel()
	var ids []linexpr.VarID
	weights := []float64{3, 4, 2, 1, 5, 6, 2, 3, 4, 1, 2, 5}
	values := []float64{10, 13, 7, 5, 16, 18, 6, 9, 12, 3, 7, 15}
	e := linexpr.Expr{}
	obj := linexpr.Expr{}
	for i := range weights {
		id := m.Binary("")
		ids = append(ids, id)
		e = e.PlusTerm(id, weights[i])
		obj = obj.PlusTerm(id, values[i])
	}
	m.Add("w", e, linexpr.LE, 15)
	m.SetObjective(obj, true)
	c := m.Compile()
	_ = ids
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := milp.Solve(c, milp.Options{})
		if err != nil || s.Status != milp.Optimal {
			b.Fatal(err, s.Status)
		}
	}
}

// gammaSweepChain drives one Γ price-curve sweep — the oracle workload
// behind hisweep -gamma — over the Γ-robust relaxation at the attainable
// 0.6 floor (every Γ in the sweep is feasible within MaxNodes: the
// availability row demands N >= Γ·0.75/0.4, i.e. N >= 2, 4, 6). Warm
// keeps one persistent solver state and moves Γ with RetargetGamma (a
// single right-hand-side mutation, dual-simplex re-solve from the
// incumbent basis); cold recompiles the robust relaxation and rebuilds a
// fresh state at every Γ, like a sweep without the handle would.
func gammaSweepChain(b *testing.B, warm bool, st *milp.State, h *core.RobustHandle) (pivots, nodes int) {
	pr := design.PaperProblem(0.9)
	for _, gamma := range []float64{1, 2, 3} {
		var pool []milp.PoolSolution
		var agg *milp.Solution
		var err error
		if warm {
			if err = h.RetargetGamma(st, gamma); err != nil {
				b.Fatal(err)
			}
			pool, agg, err = st.SolvePool(0, 1e-6)
		} else {
			var work *linexpr.Compiled
			work, _, _, err = core.CompileMILPRobust(pr, core.RobustCompile{Gamma: gamma, PDRFloor: 0.6})
			if err != nil {
				b.Fatal(err)
			}
			pool, agg, err = milp.NewState(work, milp.Options{}).SolvePool(0, 1e-6)
		}
		if err != nil {
			b.Fatal(err)
		}
		if agg.Status != milp.Optimal || len(pool) == 0 {
			b.Fatalf("Γ=%g: status %v, %d members", gamma, agg.Status, len(pool))
		}
		pivots += agg.LPIterations
		nodes += agg.Nodes
	}
	return pivots, nodes
}

// BenchmarkMILPGammaSweep measures the Γ = 1 → 2 → 3 robustness
// price-curve sweep. warm is the RetargetGamma path hisweep -gamma and
// the Γ-propose optimizer rely on; cold is the recompile-per-Γ baseline.
// pivots/op warm vs cold is the recorded payoff of right-hand-side
// retargeting across Γ moves.
func BenchmarkMILPGammaSweep(b *testing.B) {
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var st *milp.State
			var h *core.RobustHandle
			if mode.warm {
				work, _, hh, err := core.CompileMILPRobust(design.PaperProblem(0.9), core.RobustCompile{Gamma: 1, PDRFloor: 0.6})
				if err != nil {
					b.Fatal(err)
				}
				h = hh
				st = milp.NewState(work, milp.Options{})
			}
			var pivots, nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, n := gammaSweepChain(b, mode.warm, st, h)
				pivots += p
				nodes += n
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		})
	}
}

// paretoFrontBounds is the 16-point ε grid of the front benchmarks:
// 0.60 → 0.87 in steps of 0.018, crossing the Γ = 1 node-count ceilings
// (n − 0.75)/n at 0.8125 (n = 4), 0.85 (n = 5), and 0.875 (n = 6), so
// the sweep repeatedly changes which power classes the floor row prunes.
func paretoFrontBounds() []float64 {
	bounds := make([]float64, 16)
	for i := range bounds {
		bounds[i] = 0.60 + 0.018*float64(i)
	}
	return bounds
}

// paretoFrontChain drives one 16-point ε-constraint front enumeration —
// the MILP-layer workload behind hisweep -pareto — over the Γ = 1
// protected relaxation at the attainable 0.6 robust floor, pooling at
// each bound. Warm moves the floor with ParetoHandle.Retarget on one
// persistent state (a single right-hand-side mutation, dual-simplex
// re-solve); cold recompiles the pareto relaxation and rebuilds a fresh
// state per bound, like hisweep -paretocold.
func paretoFrontChain(b *testing.B, warm bool, st *milp.State, h *core.ParetoHandle) (pivots, nodes int) {
	pr := design.PaperProblem(0.9)
	for _, eps := range paretoFrontBounds() {
		var pool []milp.PoolSolution
		var agg *milp.Solution
		var err error
		if warm {
			h.Retarget(st, eps)
			pool, agg, err = st.SolvePool(0, 1e-6)
		} else {
			var work *linexpr.Compiled
			work, _, _, err = core.CompileMILPPareto(pr, core.RobustCompile{Gamma: 1, PDRFloor: 0.6}, eps)
			if err != nil {
				b.Fatal(err)
			}
			pool, agg, err = milp.NewState(work, milp.Options{}).SolvePool(0, 1e-6)
		}
		if err != nil {
			b.Fatal(err)
		}
		if agg.Status != milp.Optimal || len(pool) == 0 {
			b.Fatalf("ε=%g: status %v, %d members", eps, agg.Status, len(pool))
		}
		pivots += agg.LPIterations
		nodes += agg.Nodes
	}
	return pivots, nodes
}

// BenchmarkMILPParetoFront measures the 16-point ε-constraint front
// enumeration. warm is the Retarget path hisweep -pareto rides (the
// pareto_warm_front entry of BENCH_simcore.json); cold is the
// recompile-per-bound baseline. pivots/op warm vs cold is the recorded
// incremental-re-solve payoff of the warm front.
func BenchmarkMILPParetoFront(b *testing.B) {
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var st *milp.State
			var h *core.ParetoHandle
			if mode.warm {
				work, _, hh, err := core.CompileMILPPareto(design.PaperProblem(0.9), core.RobustCompile{Gamma: 1, PDRFloor: 0.6}, 0.6)
				if err != nil {
					b.Fatal(err)
				}
				h = hh
				st = milp.NewState(work, milp.Options{})
			}
			points := len(paretoFrontBounds())
			var pivots, nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, n := paretoFrontChain(b, mode.warm, st, h)
				pivots += p
				nodes += n
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
			b.ReportMetric(float64(points)/(b.Elapsed().Seconds()/float64(b.N)), "points/sec")
		})
	}
}

// BenchmarkExtParetoSweep measures one warm ε-constraint Pareto sweep —
// the full hisweep -pareto pipeline (warm MILP retargets + record replay
// + shared-cache evaluation) — over an 8-bound grid at 20 s fidelity on
// a fresh engine per op, reporting the front-sharing metrics alongside
// ns/op.
func BenchmarkExtParetoSweep(b *testing.B) {
	bounds := []float64{0.5, 0.56, 0.62, 0.68, 0.74, 0.8, 0.86, 0.92}
	mkProblem := func() *design.Problem {
		pr := design.PaperProblem(0.5)
		pr.Duration = 20
		pr.Runs = 1
		return pr
	}
	if _, err := core.ParetoSweep(mkProblem(), core.SweepOptions{Bounds: bounds}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pivots int
	var fresh float64
	for i := 0; i < b.N; i++ {
		res, err := core.ParetoSweep(mkProblem(), core.SweepOptions{Bounds: bounds})
		if err != nil {
			b.Fatal(err)
		}
		pivots += res.LPIterations
		fresh += res.FreshEvalFrac()
	}
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	b.ReportMetric(fresh/float64(b.N), "fresh_eval_frac")
	b.ReportMetric(float64(len(bounds)), "points/op")
}

// BenchmarkGammaOneSlabLegacyFallback measures the Γ = 1 known-cost
// regression pinned by core's TestGammaOneSecondClassSlab: enumerating
// the degenerate 132-member second power class, where the warm
// single-tree pool trips its stale-twice guard and falls back to the
// legacy clone-based enumeration. The ~tens-of-seconds per op ARE the
// regression being tracked (hisweep -gamma pays this once per sweep) —
// far too slow for BENCH_simcore.json's repeat-3 protocol, so it is
// deliberately absent from hibench -benchjson; run it directly with
// -benchtime 1x when touching the pool enumeration or the Γ lowering.
func BenchmarkGammaOneSlabLegacyFallback(b *testing.B) {
	pr := design.PaperProblem(0.9)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work, obj, _, err := core.CompileMILPRobust(pr, core.RobustCompile{Gamma: 1, PDRFloor: 0.83})
		if err != nil {
			b.Fatal(err)
		}
		st := milp.NewState(work, milp.Options{})
		_, agg1, err := st.SolvePool(0, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		work.AddExprRow("prune_0", obj, linexpr.GE, agg1.Objective+1e-4)
		b.StartTimer()
		pool, agg2, err := st.SolvePool(0, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		if len(pool) != 132 || agg2.WarmSolves != 0 || agg2.ColdSolves != 0 {
			b.Fatalf("slab shape moved: %d members, warm=%d cold=%d (want 132 via the legacy fallback)",
				len(pool), agg2.WarmSolves, agg2.ColdSolves)
		}
	}
	b.ReportMetric(132, "members/op")
}
