module hiopt

go 1.22
